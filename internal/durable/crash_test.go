package durable

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/snapshot"
	"resultdb/internal/sqlparse"
	"resultdb/internal/types"
	"resultdb/internal/wal"
	"resultdb/internal/wire"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

// This file is the crash-recovery differential gate, the durability
// counterpart of wire's chaos gate: seed a workload, run a fixed DML/DDL
// sequence with the filesystem scheduled to die at every interesting byte
// offset of the WAL stream, "reboot" from the surviving bytes, and require
//
//	(1) prefix consistency — recovery lands on some statement prefix R with
//	    acked ≤ R ≤ total: an acknowledged batch is never lost, an
//	    unacknowledged tail may drop, and nothing is ever half-applied;
//	(2) byte-exact state — the recovered database's full snapshot encoding
//	    equals an uncrashed oracle that executed exactly the first R
//	    statements; and
//	(3) byte-exact answers — the recovered database answers the workload
//	    suite (JOB×33 RESULTDB, star, hierarchy) wire-identically to that
//	    oracle.
//
// The fault plan is deterministic (wal.FaultFS kills the n-th written byte),
// so every failure reproduces exactly.

// suiteQuery names one workload query of a differential suite.
type suiteQuery struct {
	name string
	sql  string
}

// encodeSuite answers every suite query and concatenates the wire encodings.
func encodeSuite(t *testing.T, d *db.Database, suite []suiteQuery) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, q := range suite {
		res, err := d.QuerySQL(q.sql)
		if err != nil {
			t.Fatalf("suite %s: %v", q.name, err)
		}
		buf.WriteString(q.name)
		buf.Write(wire.EncodeResult(res))
	}
	return buf.Bytes()
}

// snapBytes is the byte-exact whole-database fingerprint: the snapshot
// encoding covers the catalog (tables, views, keys) and every row in order.
func snapBytes(t *testing.T, d *db.Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.SaveLSN(d, 0, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// crashLiteral produces a deterministic literal for a column kind.
func crashLiteral(kind types.Kind, seq int) string {
	switch kind {
	case types.KindInt:
		return fmt.Sprintf("%d", 910000000+seq)
	case types.KindFloat:
		return fmt.Sprintf("%d.25", 910000000+seq)
	case types.KindBool:
		return "TRUE"
	default:
		return fmt.Sprintf("'crash_gate_%d'", seq)
	}
}

// crashDML builds the seeded statement sequence the gate kills: inserts into
// real workload tables (so suite answers depend on the surviving prefix),
// DDL (CREATE/DROP TABLE and MATERIALIZED VIEW, so catalog changes replay),
// and inserts into the gate's own table.
func crashDML(t *testing.T, d *db.Database, suite []suiteQuery) []string {
	t.Helper()
	sel, err := sqlparse.ParseSelect(suite[0].sql)
	if err != nil {
		t.Fatalf("parse %s: %v", suite[0].name, err)
	}
	tables := sqlparse.Tables(sel)
	if len(tables) > 3 {
		tables = tables[:3]
	}
	seq := 0
	stmts := []string{"CREATE TABLE crash_t (id INTEGER PRIMARY KEY, tag TEXT)"}
	for i, tbl := range tables {
		def, err := d.Catalog().Lookup(tbl)
		if err != nil {
			t.Fatalf("lookup %s: %v", tbl, err)
		}
		row := func() string {
			vals := make([]string, len(def.Columns))
			for c, col := range def.Columns {
				seq++
				vals[c] = crashLiteral(col.Type, seq)
			}
			return strings.Join(vals, ", ")
		}
		stmts = append(stmts, fmt.Sprintf("INSERT INTO %s VALUES (%s), (%s)", def.Name, row(), row()))
		if i == 0 {
			stmts = append(stmts, fmt.Sprintf(
				"CREATE MATERIALIZED VIEW crash_mv AS SELECT x.%s FROM %s AS x",
				def.Columns[0].Name, def.Name))
		}
	}
	stmts = append(stmts,
		"INSERT INTO crash_t VALUES (1, 'alpha'), (2, 'beta')",
		"DROP MATERIALIZED VIEW crash_mv",
		"INSERT INTO crash_t VALUES (3, 'gamma')",
	)
	return stmts
}

// buildImage bootstraps a workload into a fresh in-memory data directory
// (checkpoint at LSN 0, empty WAL) — the disk image every fault run clones.
func buildImage(t *testing.T, bootstrap func(*db.Database) error) *wal.MemFS {
	t.Helper()
	img := wal.NewMemFS()
	mgr, _, err := Open(Options{FS: img, SegmentBytes: 512}, bootstrap)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	return img
}

// noBootstrap fails the test if recovery ever falls back to bootstrapping:
// every fault run must find its state on the (cloned) disk.
func noBootstrap(t *testing.T) func(*db.Database) error {
	return func(*db.Database) error {
		t.Error("bootstrap invoked on a recovered image")
		return fmt.Errorf("bootstrap invoked on a recovered image")
	}
}

// runCrashMatrix is the gate proper. SegmentBytes is tiny (512) so the
// sequence crosses several rotations and fault offsets land inside, between,
// and across segments.
func runCrashMatrix(t *testing.T, bootstrap func(*db.Database) error, suite []suiteQuery) {
	img := buildImage(t, bootstrap)

	// Clean run: learn each statement's record boundary in the WAL stream.
	cleanFS := img.Clone()
	mgr, d, err := Open(Options{FS: cleanFS, SegmentBytes: 512}, noBootstrap(t))
	if err != nil {
		t.Fatal(err)
	}
	stmts := crashDML(t, d, suite)
	boundaries := []int64{0}
	for _, sql := range stmts {
		if _, err := d.Exec(sql); err != nil {
			t.Fatalf("clean run %q: %v", sql, err)
		}
		boundaries = append(boundaries, mgr.Stats().Wal.Bytes)
	}
	mgr.Close()

	// Oracle: one clean database advanced statement by statement, its full
	// snapshot captured after every prefix. Suite encodings are derived
	// lazily per distinct prefix from those snapshots.
	oracle := db.New()
	if err := bootstrap(oracle); err != nil {
		t.Fatal(err)
	}
	oracleSnap := make([][]byte, len(stmts)+1)
	oracleSnap[0] = snapBytes(t, oracle)
	for i, sql := range stmts {
		if _, err := oracle.Exec(sql); err != nil {
			t.Fatalf("oracle %q: %v", sql, err)
		}
		oracleSnap[i+1] = snapBytes(t, oracle)
	}
	oracleSuite := map[uint64][]byte{}
	suiteFor := func(r uint64) []byte {
		if b, ok := oracleSuite[r]; ok {
			return b
		}
		od, _, err := snapshot.LoadLSN(bytes.NewReader(oracleSnap[r]))
		if err != nil {
			t.Fatalf("oracle prefix %d: %v", r, err)
		}
		b := encodeSuite(t, od, suite)
		oracleSuite[r] = b
		return b
	}

	// Interesting byte offsets: each record boundary ±1, each record's
	// midpoint, and the first few bytes of the stream. Offset == total
	// bytes never fires — the uncrashed control point.
	total := boundaries[len(boundaries)-1]
	offSet := map[int64]bool{0: true, 1: true, 7: true, total: true}
	for i := 1; i < len(boundaries); i++ {
		lo, hi := boundaries[i-1], boundaries[i]
		for _, o := range []int64{hi - 1, hi, hi + 1, (lo + hi) / 2} {
			if o >= 0 && o <= total {
				offSet[o] = true
			}
		}
	}
	var offsets []int64
	for o := range offSet {
		offsets = append(offsets, o)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	t.Logf("%d statements, %d wal bytes, %d fault points", len(stmts), total, len(offsets))

	suiteChecked := map[uint64]bool{}
	for _, off := range offsets {
		inner := img.Clone()
		ffs := wal.NewFaultFS(inner)
		mgr, d, err := Open(Options{FS: ffs, SegmentBytes: 512}, noBootstrap(t))
		if err != nil {
			t.Fatalf("off %d: open: %v", off, err)
		}
		ffs.Arm(off)
		acked := 0
		for _, sql := range stmts {
			if _, err := d.Exec(sql); err != nil {
				if !ffs.Crashed() {
					t.Fatalf("off %d: non-crash error on %q: %v", off, sql, err)
				}
				break
			}
			acked++
		}
		mgr.Close() // error expected after a crash; the disk is `inner`

		// Reboot from the surviving bytes.
		rm, rd, err := Open(Options{FS: inner}, noBootstrap(t))
		if err != nil {
			t.Fatalf("off %d (acked %d): recovery failed: %v", off, acked, err)
		}
		r := rm.RecoveredLSN()
		if r < uint64(acked) || r > uint64(len(stmts)) {
			t.Fatalf("off %d: recovered to lsn %d outside [acked %d, total %d]", off, r, acked, len(stmts))
		}
		if got := snapBytes(t, rd); !bytes.Equal(got, oracleSnap[r]) {
			t.Fatalf("off %d: recovered state differs byte-wise from oracle prefix %d (acked %d)", off, r, acked)
		}
		if !suiteChecked[r] {
			if !bytes.Equal(encodeSuite(t, rd, suite), suiteFor(r)) {
				t.Fatalf("off %d: suite answers differ from oracle at prefix %d", off, r)
			}
			suiteChecked[r] = true
		}
		rm.Close()
	}
	if !suiteChecked[uint64(len(stmts))] {
		t.Error("no fault point exercised the full-prefix (uncrashed) suite")
	}
}

func hierarchySuite() []suiteQuery {
	return []suiteQuery{
		{"hier/outer", strings.TrimSpace(hierarchy.OuterJoinQuery)},
		{"hier/rdb-electronics", strings.TrimSpace(hierarchy.ResultDBElectronics)},
		{"hier/rdb-clothing", strings.TrimSpace(hierarchy.ResultDBClothing)},
	}
}

func starSuite(cfg star.Config) []suiteQuery {
	var out []suiteQuery
	for _, sel := range []float64{0.2, 0.6, 1.0} {
		st := star.Query(cfg, sel)
		rdb := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(star.PayloadQuery(cfg, sel)), "SELECT")
		out = append(out,
			suiteQuery{fmt.Sprintf("star-%.1f/st", sel), st},
			suiteQuery{fmt.Sprintf("star-%.1f/rdb", sel), rdb},
		)
	}
	return out
}

func jobSuite() []suiteQuery {
	var out []suiteQuery
	for _, q := range job.Queries() {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		out = append(out, suiteQuery{q.Name + "/rdb", sql})
	}
	return out
}

func TestCrashRecoveryDifferentialHierarchy(t *testing.T) {
	runCrashMatrix(t, func(d *db.Database) error {
		return hierarchy.Load(d, hierarchy.DefaultConfig())
	}, hierarchySuite())
}

func TestCrashRecoveryDifferentialStar(t *testing.T) {
	cfg := star.Config{Dims: 3, DimRows: 12, PayloadLen: 16, Seed: 7}
	runCrashMatrix(t, func(d *db.Database) error {
		return star.Load(d, cfg)
	}, starSuite(cfg))
}

func TestCrashRecoveryDifferentialJOB(t *testing.T) {
	runCrashMatrix(t, func(d *db.Database) error {
		return job.Load(d, job.Config{Scale: 0.05, Seed: 42})
	}, jobSuite())
}

// countingFS wraps a wal.FS and counts every byte written through it —
// including checkpoint bytes, which wal.Stats does not see — so the
// mid-checkpoint crash matrix can place fault offsets across the whole write
// stream.
type countingFS struct {
	wal.FS
	written int64
}

type countingFile struct {
	wal.File
	fs *countingFS
}

func (c *countingFS) OpenAppend(name string) (wal.File, error) {
	f, err := c.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (f *countingFile) Write(p []byte) (int, error) {
	n, err := f.File.Write(p)
	f.fs.written += int64(n)
	return n, err
}

// TestCrashDuringCheckpoint kills the filesystem at offsets spanning a
// checkpoint taken mid-sequence: whatever the offset — during the tmp write,
// around the rename, during pruning — recovery must land on a consistent
// prefix, from either the old checkpoint plus WAL or the new one.
func TestCrashDuringCheckpoint(t *testing.T) {
	bootstrap := func(d *db.Database) error {
		return hierarchy.Load(d, hierarchy.Config{Products: 200, Seed: 3})
	}
	suite := hierarchySuite()
	img := buildImage(t, bootstrap)

	runSequence := func(fsys wal.FS) (*Manager, *db.Database, int, error) {
		mgr, d, err := Open(Options{FS: fsys, SegmentBytes: 512}, noBootstrap(t))
		if err != nil {
			t.Fatal(err)
		}
		stmts := crashDML(t, d, suite)
		acked := 0
		for i, sql := range stmts {
			if _, err := d.Exec(sql); err != nil {
				return mgr, d, acked, err
			}
			acked++
			if i == 2 {
				if err := mgr.Checkpoint(); err != nil {
					return mgr, d, acked, err
				}
			}
		}
		return mgr, d, acked, nil
	}

	// Clean run on a counting FS to size the whole write stream.
	counter := &countingFS{FS: img.Clone()}
	mgr, cleanDB, _, err := runSequence(counter)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	nStmts := len(crashDML(t, cleanDB, suite))
	mgr.Close()
	total := counter.written

	// Oracle prefixes (checkpointing is invisible to logical state).
	oracle := db.New()
	if err := bootstrap(oracle); err != nil {
		t.Fatal(err)
	}
	oracleSnap := make([][]byte, nStmts+1)
	oracleSnap[0] = snapBytes(t, oracle)
	for i, sql := range crashDML(t, oracle, suite) {
		if _, err := oracle.Exec(sql); err != nil {
			t.Fatal(err)
		}
		oracleSnap[i+1] = snapBytes(t, oracle)
	}

	step := total/40 + 1
	for off := int64(0); off <= total; off += step {
		inner := img.Clone()
		ffs := wal.NewFaultFS(inner)
		ffs.Arm(off)
		mgr, _, acked, err := runSequence(ffs)
		if err != nil && !ffs.Crashed() {
			t.Fatalf("off %d: non-crash error: %v", off, err)
		}
		mgr.Close()
		rm, rd, err := Open(Options{FS: inner}, noBootstrap(t))
		if err != nil {
			t.Fatalf("off %d: recovery failed: %v", off, err)
		}
		r := rm.RecoveredLSN()
		if r < uint64(acked) || r > uint64(nStmts) {
			t.Fatalf("off %d: recovered lsn %d outside [acked %d, total %d]", off, r, acked, nStmts)
		}
		if !bytes.Equal(snapBytes(t, rd), oracleSnap[r]) {
			t.Fatalf("off %d: recovered state differs from oracle prefix %d", off, r)
		}
		rm.Close()
	}
}

// TestRecoveryLiveness: a recovered database is fully alive — it accepts new
// commits, checkpoints, and survives another reopen with everything intact.
func TestRecoveryLiveness(t *testing.T) {
	img := buildImage(t, func(d *db.Database) error {
		_, err := d.ExecScript(`
			CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT);
			INSERT INTO t VALUES (1, 'boot');
		`)
		return err
	})
	// Session 1: commit, then tear the final record by hand.
	mgr, d, err := Open(Options{FS: img}, noBootstrap(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO t VALUES (2, 'acked')"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec("INSERT INTO t VALUES (3, 'torn')"); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	names, _ := img.List()
	for _, name := range names {
		if strings.HasSuffix(name, ".seg") {
			data, _ := img.ReadFile(name)
			if len(data) > 0 {
				img.Truncate(name, int64(len(data)-3))
			}
		}
	}
	// Session 2: recover (drops the torn record), keep working, checkpoint.
	mgr, d, err = Open(Options{FS: img}, noBootstrap(t))
	if err != nil {
		t.Fatal(err)
	}
	if st := mgr.Stats(); !st.TornTail || st.Replayed != 1 {
		t.Fatalf("stats = %+v, want torn tail with 1 replayed", st)
	}
	if _, err := d.Exec("INSERT INTO t VALUES (3, 'post-recovery')"); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	// Session 3: everything is there; the WAL was pruned by the checkpoint.
	mgr, d, err = Open(Options{FS: img}, noBootstrap(t))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if st := mgr.Stats(); st.Replayed != 0 || st.TornTail {
		t.Fatalf("post-checkpoint reopen stats = %+v", st)
	}
	res, err := d.QuerySQL("SELECT t.tag FROM t AS t WHERE t.id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().NumRows() != 1 || res.First().Rows[0][0].Text() != "post-recovery" {
		t.Fatalf("rows = %+v", res.First().Rows)
	}
}

// Package csvio imports and exports tables as CSV with a typed header, so
// the synthetic workloads can be dumped for inspection or loaded into other
// systems, and external data can be loaded into the engine.
//
// Format: the first record is a header of "name:TYPE" fields (TYPE one of
// INTEGER, DOUBLE, TEXT, BOOLEAN); NULLs are written as \N (PostgreSQL COPY
// convention), which is distinguishable from the empty string.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"resultdb/internal/catalog"
	"resultdb/internal/db"
	"resultdb/internal/storage"
	"resultdb/internal/types"
)

// nullToken marks SQL NULL in CSV cells.
const nullToken = `\N`

// Dump writes the table to w: typed header, then one record per row.
func Dump(t *storage.Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Def.Columns))
	for i, c := range t.Def.Columns {
		header[i] = c.Name + ":" + c.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, len(header))
	for _, row := range t.Rows {
		for i, v := range row {
			record[i] = renderCell(v)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func renderCell(v types.Value) string {
	if v.IsNull() {
		return nullToken
	}
	return v.String()
}

// Load creates table name in d from the CSV stream and inserts every row.
// The header defines the schema; the first column is used as the primary
// key when its name is "id" (the convention of the bundled workloads).
func Load(d *db.Database, name string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("csvio: reading header: %w", err)
	}
	cols := make([]catalog.Column, len(header))
	for i, h := range header {
		name, kind, err := parseHeaderField(h)
		if err != nil {
			return 0, err
		}
		cols[i] = catalog.Column{Name: name, Type: kind}
	}
	def, err := catalog.NewTableDef(name, cols)
	if err != nil {
		return 0, err
	}
	if strings.EqualFold(cols[0].Name, "id") {
		def.PrimaryKey = []string{cols[0].Name}
	}
	tab, err := d.CreateTable(def)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		record, err := cr.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, fmt.Errorf("csvio: record %d: %w", n+1, err)
		}
		if len(record) != len(cols) {
			return n, fmt.Errorf("csvio: record %d has %d fields, want %d", n+1, len(record), len(cols))
		}
		row := make(types.Row, len(cols))
		for i, cell := range record {
			v, err := parseCell(cell, cols[i].Type)
			if err != nil {
				return n, fmt.Errorf("csvio: record %d column %s: %w", n+1, cols[i].Name, err)
			}
			row[i] = v
		}
		if err := tab.Insert(row); err != nil {
			return n, err
		}
		n++
	}
}

func parseHeaderField(h string) (string, types.Kind, error) {
	idx := strings.LastIndexByte(h, ':')
	if idx <= 0 {
		return "", 0, fmt.Errorf("csvio: header field %q is not name:TYPE", h)
	}
	name := h[:idx]
	switch strings.ToUpper(h[idx+1:]) {
	case "INTEGER", "INT", "BIGINT":
		return name, types.KindInt, nil
	case "DOUBLE", "FLOAT", "REAL":
		return name, types.KindFloat, nil
	case "TEXT", "VARCHAR":
		return name, types.KindText, nil
	case "BOOLEAN", "BOOL":
		return name, types.KindBool, nil
	default:
		return "", 0, fmt.Errorf("csvio: unknown type in header field %q", h)
	}
}

func parseCell(cell string, kind types.Kind) (types.Value, error) {
	if cell == nullToken {
		return types.Null(), nil
	}
	switch kind {
	case types.KindInt:
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewInt(n), nil
	case types.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewFloat(f), nil
	case types.KindText:
		return types.NewText(cell), nil
	case types.KindBool:
		switch strings.ToLower(cell) {
		case "true", "t", "1":
			return types.NewBool(true), nil
		case "false", "f", "0":
			return types.NewBool(false), nil
		}
		return types.Value{}, fmt.Errorf("bad boolean %q", cell)
	default:
		return types.Value{}, fmt.Errorf("unsupported kind %v", kind)
	}
}

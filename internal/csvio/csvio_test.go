package csvio

import (
	"bytes"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/workload/hierarchy"
)

func TestDumpLoadRoundTrip(t *testing.T) {
	src := db.New()
	if _, err := src.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score DOUBLE, ok BOOLEAN);
		INSERT INTO t VALUES (1, 'plain', 1.5, TRUE);
		INSERT INTO t VALUES (2, 'comma, quoted "x"', -0.25, FALSE);
		INSERT INTO t VALUES (3, NULL, NULL, NULL);
		INSERT INTO t VALUES (4, '', 0.0, TRUE);
	`); err != nil {
		t.Fatal(err)
	}
	tab, _ := src.Table("t")

	var buf bytes.Buffer
	if err := Dump(tab, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "id:INTEGER,name:TEXT,score:DOUBLE,ok:BOOLEAN") {
		t.Errorf("header = %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}

	dst := db.New()
	n, err := Load(dst, "t2", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("loaded %d rows", n)
	}
	got, _ := dst.Table("t2")
	if len(got.Def.PrimaryKey) != 1 || got.Def.PrimaryKey[0] != "id" {
		t.Errorf("pk = %v", got.Def.PrimaryKey)
	}
	for i, row := range tab.Rows {
		if !row.Equal(got.Rows[i]) {
			t.Errorf("row %d: %v != %v", i, got.Rows[i], row)
		}
	}
	// NULL vs empty string must be preserved distinctly.
	if !got.Rows[2][1].IsNull() {
		t.Error("NULL text lost")
	}
	if got.Rows[3][1].IsNull() || got.Rows[3][1].Text() != "" {
		t.Error("empty string turned into NULL")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"bad header", "id\n1\n"},
		{"bad type", "id:BLOB\n1\n"},
		{"bad int", "id:INTEGER\nxyz\n"},
		{"bad bool", "id:BOOLEAN\nmaybe\n"},
		{"arity", "id:INTEGER,x:TEXT\n1\n"},
	}
	for _, c := range cases {
		d := db.New()
		if _, err := Load(d, "t", strings.NewReader(c.csv)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Duplicate table.
	d := db.New()
	if _, err := Load(d, "t", strings.NewReader("id:INTEGER\n1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(d, "t", strings.NewReader("id:INTEGER\n1\n")); err == nil {
		t.Error("duplicate table name should fail")
	}
}

// TestWorkloadRoundTrip dumps a generated workload and reloads it into a
// fresh database; queries must agree.
func TestWorkloadRoundTrip(t *testing.T) {
	src := db.New()
	if err := hierarchy.Load(src, hierarchy.Config{Products: 100, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	dst := db.New()
	for _, name := range src.Catalog().Names() {
		tab, _ := src.Table(name)
		var buf bytes.Buffer
		if err := Dump(tab, &buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dst, name, &buf); err != nil {
			t.Fatal(err)
		}
	}
	q := "SELECT COUNT(*) FROM products AS p, electronics AS e WHERE p.id = e.pid AND p.price < 500"
	a, err := src.QuerySQL(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.QuerySQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.First().Rows[0].Equal(b.First().Rows[0]) {
		t.Errorf("reloaded data disagrees: %v vs %v", a.First().Rows[0], b.First().Rows[0])
	}
}

package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to Replay as a single-segment log:
// whatever the bytes, replay must terminate with a typed error or a valid
// (possibly torn-tail) prefix — never panic, never unbounded allocation —
// and must be deterministic: two replays of the same bytes see identical
// records.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	// A well-formed two-record log.
	valid := appendRecord(nil, 1, EncodeStatements([]string{"INSERT INTO t VALUES (1)"}))
	valid = appendRecord(valid, 2, EncodeStatements([]string{"DROP TABLE t"}))
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	flipped := append([]byte(nil), valid...)
	flipped[4] ^= 0x01
	f.Add(flipped) // mid-log corruption
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := NewMemFS()
		fs.WriteFile(segName(1), data)
		type rec struct {
			lsn     uint64
			payload string
		}
		run := func() ([]rec, ReplayStats, error) {
			var got []rec
			stats, err := Replay(fs, 0, func(lsn uint64, payload []byte) error {
				got = append(got, rec{lsn, string(payload)})
				// Statement payloads must also decode bounded, or fail
				// cleanly — replayed records flow straight into Exec.
				DecodeStatements(payload)
				return nil
			})
			return got, stats, err
		}
		got1, stats1, err1 := run()
		got2, stats2, err2 := run()
		if (err1 == nil) != (err2 == nil) || len(got1) != len(got2) || stats1 != stats2 {
			t.Fatalf("nondeterministic replay: %v/%v vs %v/%v", stats1, err1, stats2, err2)
		}
		for i := range got1 {
			if got1[i] != got2[i] {
				t.Fatalf("record %d differs between replays", i)
			}
		}
		if err1 != nil {
			return
		}
		// A clean replay's log must reopen for append and accept a record.
		l, err := Open(Options{FS: fs}, 0)
		if err != nil {
			t.Fatalf("Open after clean replay: %v", err)
		}
		if _, err := l.Append([]byte("post")); err != nil {
			t.Fatalf("Append after clean replay: %v", err)
		}
		l.Close()
	})
}

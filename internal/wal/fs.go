// fs.go defines the filesystem seam the durability subsystem writes through.
//
// Everything the WAL and the checkpointer do to disk goes through the FS
// interface: appending to segments, renaming a finished checkpoint into
// place, listing the data directory at recovery time. That indirection is
// what makes crash recovery a deterministic, exhaustively testable property
// instead of a production anecdote — the crash gate swaps the real directory
// for an in-memory one wrapped in a FaultFS that kills the "disk" at a
// scheduled byte offset, in the same spirit as internal/faultnet killing
// connections at scheduled offsets.
package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrCrashed marks every operation attempted on a FaultFS after its
// scheduled crash fired, so tests can tell injected deaths from real bugs
// with errors.Is.
var ErrCrashed = errors.New("wal: injected filesystem crash")

// File is an open, append-only file handle.
type File interface {
	// Write appends bytes at the end of the file.
	Write(p []byte) (int, error)
	// Sync forces written bytes to stable storage (fsync).
	Sync() error
	// Close releases the handle. Close does not imply Sync.
	Close() error
}

// FS is a flat directory of files — the durability subsystem's entire view
// of the outside world. Implementations must allow re-opening a file that is
// already open (recovery scans never run concurrently with appends).
type FS interface {
	// OpenAppend opens name for appending, creating it empty if missing.
	OpenAppend(name string) (File, error)
	// ReadFile returns the full contents of name. Segment files are bounded
	// by the rotation budget and checkpoints are loaded whole anyway, so a
	// whole-file read keeps every consumer simple.
	ReadFile(name string) ([]byte, error)
	// List returns the names of all files in the directory, sorted.
	List() ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Truncate cuts name down to size bytes (dropping a torn tail).
	Truncate(name string, size int64) error
	// SyncDir forces directory metadata (renames, removals) to stable
	// storage, the step that makes a rename-into-place checkpoint atomic
	// across a power cut.
	SyncDir() error
}

// DirFS is the production FS: a real directory on the local filesystem.
type DirFS struct {
	dir string
}

// NewDirFS returns a DirFS rooted at dir, creating the directory if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the root directory path.
func (d *DirFS) Dir() string { return d.dir }

func (d *DirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(filepath.Join(d.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (d *DirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d *DirFS) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *DirFS) Remove(name string) error {
	return os.Remove(filepath.Join(d.dir, name))
}

func (d *DirFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(d.dir, oldname), filepath.Join(d.dir, newname))
}

func (d *DirFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(d.dir, name), size)
}

func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemFS is an in-memory FS for tests and fuzzing. Its write model matches a
// process kill (the crash model the recovery gate verifies): every completed
// Write survives — as it would in the OS page cache — and fsync is a no-op,
// so a FaultFS-scheduled crash loses exactly the torn suffix of the write in
// flight and nothing else, deterministically.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte)}
}

// Clone returns a deep copy — the "disk image" a crash test reboots from,
// without re-running the bootstrap that produced it.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for name, data := range m.files {
		c.files[name] = append([]byte(nil), data...)
	}
	return c
}

// memFile appends through to its MemFS so the bytes are visible (and
// "persisted" under the process-kill model) as soon as Write returns.
type memFile struct {
	fs   *MemFS
	name string
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if _, ok := f.fs.files[f.name]; !ok {
		return 0, fmt.Errorf("wal: write to removed file %q", f.name)
	}
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = []byte{}
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), data...), nil
}

func (m *MemFS) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if size < 0 || size > int64(len(data)) {
		return fmt.Errorf("wal: truncate %q to %d (size %d)", name, size, len(data))
	}
	m.files[name] = data[:size]
	return nil
}

// WriteFile installs raw bytes as a file — the fuzzing and corruption-test
// entry point for planting arbitrary segment or checkpoint images.
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
}

func (m *MemFS) SyncDir() error { return nil }

// FaultFS wraps an FS with a deterministic crash: after Arm(n), the n-th
// byte written through it is the last one that reaches the inner FS — the
// write in flight is delivered as a torn prefix, and every later operation
// fails with ErrCrashed. Recovery then reads the *inner* FS directly, which
// plays the role of the disk after reboot.
//
// Only Write bytes count toward the budget; metadata operations (rename,
// remove, truncate) are atomic in this model — they either happened before
// the crash or fail with it.
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	armed     bool
	remaining int64
	crashed   bool
}

// NewFaultFS wraps inner; until Arm is called every operation passes through.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner}
}

// Arm schedules the crash after n more written bytes (n = 0 kills the next
// write outright).
func (f *FaultFS) Arm(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armed = true
	f.remaining = n
}

// Crashed reports whether the scheduled crash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// check returns ErrCrashed once the crash fired.
func (f *FaultFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	if !f.armed {
		f.mu.Unlock()
		return ff.inner.Write(p)
	}
	if f.remaining >= int64(len(p)) {
		f.remaining -= int64(len(p))
		f.mu.Unlock()
		return ff.inner.Write(p)
	}
	// The crossing write: deliver the torn prefix, then die.
	keep := f.remaining
	f.crashed = true
	f.remaining = 0
	f.mu.Unlock()
	if keep > 0 {
		ff.inner.Write(p[:keep])
	}
	return int(keep), fmt.Errorf("%w: write torn after %d of %d bytes", ErrCrashed, keep, len(p))
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.check(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	if err := ff.fs.check(); err != nil {
		return err
	}
	return ff.inner.Close()
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) List() ([]string, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.List()
}

func (f *FaultFS) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) SyncDir() error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.SyncDir()
}

// record.go frames WAL records and encodes their statement payloads.
//
// One record = one committed DML/DDL batch. The frame is fixed-header,
// length-prefixed and CRC-guarded:
//
//	| payload len n (4B LE) | LSN (8B LE) | payload (n bytes) | CRC32 (4B LE) |
//
// The CRC (IEEE) covers the 12 header bytes plus the payload, so a torn or
// bit-flipped record can never frame-sync into garbage statements. LSNs are
// dense (each record's LSN is its predecessor's plus one), which lets replay
// distinguish a cleanly truncated tail from a hole in the middle of the log.
//
// The payload is the batch's statement texts in the repo's wire primitives:
// a uvarint statement count followed by length-prefixed strings.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"resultdb/internal/wire"
)

const (
	// recordHeaderLen is the fixed prefix before the payload: 4-byte length
	// plus 8-byte LSN.
	recordHeaderLen = 12
	// recordTrailerLen is the CRC32 suffix.
	recordTrailerLen = 4
	// recordOverhead is the per-record framing cost.
	recordOverhead = recordHeaderLen + recordTrailerLen

	// MaxRecordPayload bounds one record (one Exec batch). Far above any
	// legitimate statement batch; the limit exists so a corrupt length field
	// is rejected as corruption instead of framing a gigabyte "record".
	MaxRecordPayload = 64 << 20
)

// appendRecord appends the framed record to buf and returns it.
func appendRecord(buf []byte, lsn uint64, payload []byte) []byte {
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], lsn)
	sum := crc32.ChecksumIEEE(hdr[:])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// recordSize returns the on-disk size of a record with the given payload.
func recordSize(payload []byte) int64 {
	return int64(len(payload) + recordOverhead)
}

// parseRecord reads the record at data[off:]. Outcomes:
//
//   - ok: lsn, payload (a subslice of data — copy before retaining), and the
//     offset of the next record.
//   - torn (err == nil, ok == false): the bytes from off to the end of data
//     do not contain one whole well-formed record — the shape a crashed
//     append leaves behind. Callers decide whether "torn" is tolerable
//     (final segment) or corruption (anything else).
func parseRecord(data []byte, off int64) (lsn uint64, payload []byte, next int64, ok bool) {
	rest := data[off:]
	if len(rest) < recordHeaderLen+recordTrailerLen {
		return 0, nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(rest[0:4]))
	if n > MaxRecordPayload || recordHeaderLen+n+recordTrailerLen > int64(len(rest)) {
		return 0, nil, 0, false
	}
	lsn = binary.LittleEndian.Uint64(rest[4:12])
	payload = rest[recordHeaderLen : recordHeaderLen+n]
	sum := crc32.ChecksumIEEE(rest[:recordHeaderLen])
	sum = crc32.Update(sum, crc32.IEEETable, payload)
	if binary.LittleEndian.Uint32(rest[recordHeaderLen+n:recordHeaderLen+n+recordTrailerLen]) != sum {
		return 0, nil, 0, false
	}
	return lsn, payload, off + recordHeaderLen + n + recordTrailerLen, true
}

// classifyInvalid decides what the invalid bytes at data[off:] in a final
// segment are. nil means a torn tail — the record is truncated, or its CRC
// fails with nothing after it — which a crashed append legitimately leaves
// and recovery may drop. Anything else is mid-log corruption (an insane
// length field, or a bad record with more bytes after it: dropping it would
// silently lose the acknowledged records behind it) and wraps ErrCorrupt.
//
// The discrimination is sound under the append model: a record is written in
// one Write call and a crash tears it to a prefix, so a torn record either
// lacks a whole header or carries a correct length that reaches (or
// overshoots) end-of-file.
func classifyInvalid(data []byte, off int64) error {
	rest := data[off:]
	if int64(len(rest)) < recordOverhead {
		return nil
	}
	n := int64(binary.LittleEndian.Uint32(rest[0:4]))
	if n > MaxRecordPayload {
		return fmt.Errorf("%w: record length %d exceeds maximum at offset %d", ErrCorrupt, n, off)
	}
	if end := recordHeaderLen + n + recordTrailerLen; end < int64(len(rest)) {
		return fmt.Errorf("%w: record with bad checksum at offset %d has %d trailing bytes", ErrCorrupt, off, int64(len(rest))-end)
	}
	return nil
}

// EncodeStatements packs a batch's statement texts into a record payload.
func EncodeStatements(stmts []string) []byte {
	e := wire.NewEncoder()
	e.Uvarint(uint64(len(stmts)))
	for _, s := range stmts {
		e.Str(s)
	}
	return e.Bytes()
}

// DecodeStatements unpacks a record payload produced by EncodeStatements.
// Allocation-bounded against hostile counts: a statement costs at least one
// byte on the wire, so the count can never exceed the payload length.
func DecodeStatements(payload []byte) ([]string, error) {
	d := wire.NewDecoder(payload)
	n, err := d.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("wal: statement count: %w", err)
	}
	if n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("wal: statement count %d exceeds payload (%d bytes left)", n, d.Remaining())
	}
	stmts := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := d.Str()
		if err != nil {
			return nil, fmt.Errorf("wal: statement %d: %w", i, err)
		}
		stmts = append(stmts, s)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wal: %d trailing payload bytes", d.Remaining())
	}
	return stmts, nil
}

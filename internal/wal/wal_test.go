package wal

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// appendAll appends payloads and syncs the last one, failing the test on any
// error.
func appendAll(t *testing.T, l *Log, payloads ...string) []uint64 {
	t.Helper()
	var lsns []uint64
	for _, p := range payloads {
		lsn, err := l.Append([]byte(p))
		if err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
		lsns = append(lsns, lsn)
	}
	if len(lsns) > 0 {
		if err := l.Sync(lsns[len(lsns)-1]); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	return lsns
}

// replayAll collects every replayed payload keyed by LSN.
func replayAll(t *testing.T, fs FS, after uint64) (map[uint64]string, ReplayStats) {
	t.Helper()
	got := map[uint64]string{}
	stats, err := Replay(fs, after, func(lsn uint64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsns := appendAll(t, l, "one", "two", "three")
	if want := []uint64{1, 2, 3}; fmt.Sprint(lsns) != fmt.Sprint(want) {
		t.Fatalf("lsns = %v, want %v", lsns, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, fs, 0)
	if len(got) != 3 || got[1] != "one" || got[2] != "two" || got[3] != "three" {
		t.Fatalf("replayed %v", got)
	}
	if stats.TornTail || stats.LastLSN != 3 || stats.Records != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReplaySkipsCheckpointed(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b", "c", "d")
	l.Close()
	got, stats := replayAll(t, fs, 2)
	if len(got) != 2 || got[3] != "c" || got[4] != "d" {
		t.Fatalf("replayed %v", got)
	}
	if stats.Skipped != 2 || stats.Records != 2 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSegmentRotation(t *testing.T) {
	fs := NewMemFS()
	// Budget fits roughly one record, forcing a rotation per append.
	l, err := Open(Options{FS: fs, SegmentBytes: 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "aaaa", "bbbb", "cccc", "dddd")
	if s := l.Stats(); s.Rotations != 3 || s.Segments != 4 {
		t.Fatalf("stats = %+v, want 3 rotations over 4 segments", s)
	}
	l.Close()
	names, _ := fs.List()
	if len(names) != 4 {
		t.Fatalf("files = %v", names)
	}
	got, _ := replayAll(t, fs, 0)
	if len(got) != 4 || got[4] != "dddd" {
		t.Fatalf("replayed %v", got)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, SegmentBytes: 48}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	l.Close()
	l, err = Open(Options{FS: fs, SegmentBytes: 48}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 2 {
		t.Fatalf("LastLSN after reopen = %d, want 2", got)
	}
	lsns := appendAll(t, l, "c")
	if lsns[0] != 3 {
		t.Fatalf("lsn after reopen = %d, want 3", lsns[0])
	}
	l.Close()
	got, _ := replayAll(t, fs, 0)
	if len(got) != 3 || got[3] != "c" {
		t.Fatalf("replayed %v", got)
	}
}

func TestOpenAtCheckpointBase(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 41)
	if err != nil {
		t.Fatal(err)
	}
	lsns := appendAll(t, l, "x")
	if lsns[0] != 42 {
		t.Fatalf("first lsn = %d, want 42", lsns[0])
	}
	l.Close()
	got, _ := replayAll(t, fs, 41)
	if got[42] != "x" {
		t.Fatalf("replayed %v", got)
	}
}

func TestTornTailDropped(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "keep-one", "keep-two", "torn-away")
	l.Close()
	name := segName(1)
	data, _ := fs.ReadFile(name)
	// Tear the final record at every possible width, including losing it
	// entirely; the first two records must always survive.
	full := int64(len(data))
	tail := recordSize([]byte("torn-away"))
	for cut := full - tail; cut < full; cut++ {
		fs2 := NewMemFS()
		fs2.WriteFile(name, data[:cut])
		got, stats := replayAll(t, fs2, 0)
		if len(got) != 2 || got[1] != "keep-one" || got[2] != "keep-two" {
			t.Fatalf("cut %d: replayed %v", cut, got)
		}
		if wantTorn := cut > full-tail; stats.TornTail != wantTorn {
			t.Fatalf("cut %d: TornTail = %v, want %v", cut, stats.TornTail, wantTorn)
		}
		// Reopen for append: the torn tail is physically truncated and the
		// next record lands at LSN 3.
		l2, err := Open(Options{FS: fs2}, 0)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if lsns := appendAll(t, l2, "after-crash"); lsns[0] != 3 {
			t.Fatalf("cut %d: lsn = %d, want 3", cut, lsns[0])
		}
		l2.Close()
		got, stats = replayAll(t, fs2, 0)
		if len(got) != 3 || got[3] != "after-crash" || stats.TornTail {
			t.Fatalf("cut %d: post-recovery replay %v (stats %+v)", cut, got, stats)
		}
	}
}

func TestMidLogCorruptionTyped(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "first", "second", "third")
	l.Close()
	name := segName(1)
	clean, _ := fs.ReadFile(name)
	// Flip one byte inside the first record: a bad record with valid bytes
	// after it must be corruption, never a droppable tail. (An *inflating*
	// flip of the length field that overshoots end-of-file is the one
	// undetectable case — it is byte-identical to a torn first record.)
	for _, c := range []struct {
		off  int
		mask byte
	}{
		{0, 0x04},                   // length 5 → 1: extent shrinks, bytes follow
		{5, 0x40},                   // LSN field: CRC fails, extent unchanged
		{recordHeaderLen + 2, 0x40}, // payload: CRC fails, extent unchanged
	} {
		off := c.off
		data := append([]byte(nil), clean...)
		data[off] ^= c.mask
		fs2 := NewMemFS()
		fs2.WriteFile(name, data)
		_, err := Replay(fs2, 0, func(uint64, []byte) error { return nil })
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
		if _, err := Open(Options{FS: fs2}, 0); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: Open err = %v, want ErrCorrupt", off, err)
		}
	}
	// A flip in the final record with nothing after it is a droppable tail.
	data := append([]byte(nil), clean...)
	data[len(data)-1] ^= 0x40
	fs2 := NewMemFS()
	fs2.WriteFile(name, data)
	got, stats := replayAll(t, fs2, 0)
	if len(got) != 2 || !stats.TornTail {
		t.Fatalf("final-record flip: replayed %v (stats %+v)", got, stats)
	}
}

func TestCorruptionInNonFinalSegment(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, SegmentBytes: 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "aaaa", "bbbb", "cccc")
	l.Close()
	name := segName(2)
	data, _ := fs.ReadFile(name)
	// Truncation that would read as a torn tail in a final segment is
	// corruption in a middle one.
	fs.WriteFile(name, data[:len(data)-1])
	_, err = Replay(fs, 0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestMissingSegmentIsTyped(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, SegmentBytes: 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "aaaa", "bbbb", "cccc")
	l.Close()
	if err := fs.Remove(segName(2)); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(fs, 0, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestReplayGapAfterCheckpoint(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 10)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "x")
	l.Close()
	// A checkpoint at LSN 5 cannot be completed by a log starting at 11.
	_, err = Replay(fs, 5, func(uint64, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestPrune(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, SegmentBytes: 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "aaaa", "bbbb", "cccc", "dddd")
	// Checkpoint at LSN 3 covers segments 1..3 fully; segment 4 is live.
	if err := l.Prune(3); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	if len(names) != 1 || names[0] != segName(4) {
		t.Fatalf("files after prune = %v", names)
	}
	if s := l.Stats(); s.Pruned != 3 {
		t.Fatalf("Pruned = %d, want 3", s.Pruned)
	}
	got, _ := replayAll(t, fs, 3)
	if len(got) != 1 || got[4] != "dddd" {
		t.Fatalf("replayed %v", got)
	}
	// Appends continue normally on the pruned log.
	appendAll(t, l, "eeee")
	l.Close()
	got, _ = replayAll(t, fs, 3)
	if len(got) != 2 || got[5] != "eeee" {
		t.Fatalf("replayed %v", got)
	}
}

func TestPruneNeverRemovesLiveSegment(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	if err := l.Prune(2); err != nil {
		t.Fatal(err)
	}
	if names, _ := fs.List(); len(names) != 1 {
		t.Fatalf("live segment pruned: %v", names)
	}
	l.Close()
}

func TestGroupCommitConcurrentWriters(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err == nil {
					err = l.Sync(lsn)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Records != writers*each {
		t.Fatalf("Records = %d, want %d", s.Records, writers*each)
	}
	if s.SyncRequests != writers*each {
		t.Fatalf("SyncRequests = %d, want %d", s.SyncRequests, writers*each)
	}
	if l.SyncedLSN() != uint64(writers*each) {
		t.Fatalf("SyncedLSN = %d, want %d", l.SyncedLSN(), writers*each)
	}
	l.Close()
	got, _ := replayAll(t, fs, 0)
	if len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
	// LSNs are dense regardless of interleaving.
	for lsn := uint64(1); lsn <= uint64(writers*each); lsn++ {
		if _, ok := got[lsn]; !ok {
			t.Fatalf("missing lsn %d", lsn)
		}
	}
}

func TestSyncOffNeverFsyncs(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs, Policy: SyncOff}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	l.Close()
	if s := l.Stats(); s.Fsyncs != 0 {
		t.Fatalf("Fsyncs = %d under SyncOff", s.Fsyncs)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"", SyncAlways, false},
		{"Interval", SyncInterval, false},
		{"off", SyncOff, false},
		{"none", SyncOff, false},
		{"sometimes", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		back, err := ParseSyncPolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip %v: %v, %v", p, back, err)
		}
	}
}

func TestStatementCodecRoundTrip(t *testing.T) {
	batches := [][]string{
		nil,
		{"INSERT INTO t VALUES (1)"},
		{"CREATE TABLE t (a INT)", "INSERT INTO t VALUES (1, 'x; y')", "DROP TABLE t"},
		{strings.Repeat("UPDATE — unicode ✓ ", 100)},
	}
	for _, stmts := range batches {
		got, err := DecodeStatements(EncodeStatements(stmts))
		if err != nil {
			t.Fatalf("decode(%v): %v", stmts, err)
		}
		if len(got) != len(stmts) {
			t.Fatalf("decode(%v) = %v", stmts, got)
		}
		for i := range stmts {
			if got[i] != stmts[i] {
				t.Fatalf("stmt %d = %q, want %q", i, got[i], stmts[i])
			}
		}
	}
}

func TestDecodeStatementsHostile(t *testing.T) {
	// A huge count must be rejected before allocation, not trusted.
	hostile := []byte{0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := DecodeStatements(hostile); err == nil {
		t.Fatal("hostile count accepted")
	}
	// Trailing garbage after a valid batch is rejected.
	withTrailing := append(EncodeStatements([]string{"a"}), 0x00)
	if _, err := DecodeStatements(withTrailing); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestOversizedPayloadRejected(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxRecordPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	inner := NewMemFS()
	ffs := NewFaultFS(inner)
	l, err := Open(Options{FS: ffs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "survives")
	// Kill the disk 5 bytes into the next record.
	ffs.Arm(5)
	if _, err := l.Append([]byte("torn")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Append after crash: err = %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("fault did not fire")
	}
	if _, err := l.Append([]byte("rejected")); err == nil {
		t.Fatal("append on poisoned log accepted")
	}
	// "Reboot": recover from the inner FS as the post-crash disk.
	got, stats := replayAll(t, inner, 0)
	if len(got) != 1 || got[1] != "survives" || !stats.TornTail {
		t.Fatalf("post-crash replay %v (stats %+v)", got, stats)
	}
}

func TestDirFS(t *testing.T) {
	dir := t.TempDir()
	dfs, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{FS: dfs, SegmentBytes: 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "aaaa", "bbbb", "cccc")
	l.Close()
	got, _ := replayAll(t, dfs, 0)
	if len(got) != 3 || got[3] != "cccc" {
		t.Fatalf("replayed %v", got)
	}
	// Reopen and keep going on the real filesystem.
	l, err = Open(Options{FS: dfs, SegmentBytes: 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lsns := appendAll(t, l, "dddd"); lsns[0] != 4 {
		t.Fatalf("lsn = %d, want 4", lsns[0])
	}
	if err := l.Prune(3); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, _ = replayAll(t, dfs, 3)
	if len(got) != 1 || got[4] != "dddd" {
		t.Fatalf("replayed %v", got)
	}
}

func TestStatsTrace(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{FS: fs}, 0)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	l.Close()
	tr := l.Stats().Trace()
	if tr.Mode != "wal-stats" || len(tr.Spans) == 0 {
		t.Fatalf("trace = %+v", tr)
	}
	found := false
	for _, sp := range tr.Spans {
		if sp.Op != "counter" || sp.Phase != "wal" {
			t.Fatalf("span %+v", sp)
		}
		if sp.Label == "wal_records" && sp.RowsOut == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("wal_records span missing: %+v", tr.Spans)
	}
}

// stats.go exposes the log's counters through the repo's one observability
// surface: a trace of "counter" spans, same as wire.ServerStats.
package wal

import "resultdb/internal/trace"

// Stats is a snapshot of a Log's counters.
type Stats struct {
	// Records is the number of records appended this process.
	Records int64 `json:"records"`
	// Bytes is the framed bytes appended this process.
	Bytes int64 `json:"bytes"`
	// Fsyncs counts fsync calls on segment files.
	Fsyncs int64 `json:"fsyncs"`
	// SyncRequests counts Sync calls under SyncAlways — one per
	// acknowledged commit.
	SyncRequests int64 `json:"sync_requests"`
	// GroupShared counts Sync calls satisfied by another committer's fsync;
	// SyncRequests/(SyncRequests-GroupShared) is the mean group-commit
	// batch size.
	GroupShared int64 `json:"group_shared"`
	// Rotations counts segment rollovers.
	Rotations int64 `json:"rotations"`
	// Pruned counts segments removed by checkpoints.
	Pruned int64 `json:"pruned"`
	// Segments is the number of live segment files.
	Segments int64 `json:"segments"`
}

// Trace renders the counters as "counter" spans under Mode "wal-stats" so
// durability state reuses the EXPLAIN ANALYZE rendering path.
func (s Stats) Trace() *trace.Trace {
	counters := []struct {
		name  string
		value int64
	}{
		{"wal_records", s.Records},
		{"wal_bytes", s.Bytes},
		{"wal_fsyncs", s.Fsyncs},
		{"wal_sync_requests", s.SyncRequests},
		{"wal_group_shared", s.GroupShared},
		{"wal_rotations", s.Rotations},
		{"wal_pruned_segments", s.Pruned},
		{"wal_segments", s.Segments},
	}
	tr := &trace.Trace{Mode: "wal-stats"}
	for _, c := range counters {
		tr.Spans = append(tr.Spans, trace.Span{
			Op:      "counter",
			Label:   c.name,
			Phase:   "wal",
			RowsOut: int(c.value),
		})
	}
	return tr
}

// replay.go reconstructs committed state from the log at recovery time.
package wal

import "fmt"

// ReplayStats describes what one Replay pass saw.
type ReplayStats struct {
	// Segments is the number of segment files scanned.
	Segments int64
	// Records is the number of records passed to the apply callback
	// (records at or below the checkpoint LSN are validated but skipped).
	Records int64
	// Skipped is the number of valid records already covered by the
	// checkpoint the caller replayed from.
	Skipped int64
	// LastLSN is the LSN of the last valid record in the log, or the
	// starting LSN when the log holds no records.
	LastLSN uint64
	// TornTail reports that the final segment ended in a truncated or
	// corrupt record, which Replay dropped — the shape a crashed append
	// leaves and exactly what recovery is licensed to discard.
	TornTail bool
}

// Replay walks every segment in fs in LSN order and invokes apply for each
// valid record with LSN > after, stopping at a torn tail of the final
// segment. Any other damage — a bad record with valid data after it, a bad
// record in a non-final segment, an LSN hole, a segment whose first record
// does not match its name — returns an error wrapping ErrCorrupt: the log
// cannot be trusted past that point and silently dropping acknowledged
// batches is worse than refusing to start.
//
// An error from apply aborts the replay and is returned as-is.
func Replay(fsys FS, after uint64, apply func(lsn uint64, payload []byte) error) (ReplayStats, error) {
	stats := ReplayStats{LastLSN: after}
	segs, err := listSegments(fsys)
	if err != nil {
		return stats, err
	}
	if len(segs) == 0 {
		return stats, nil
	}
	if first := segs[0].first; first > after+1 {
		return stats, fmt.Errorf("%w: oldest segment %s starts at lsn %d but checkpoint covers only %d", ErrCorrupt, segs[0].name, first, after)
	}
	expect := segs[0].first
	for i, seg := range segs {
		if seg.first != expect {
			return stats, fmt.Errorf("%w: segment %s starts at lsn %d, want %d", ErrCorrupt, seg.name, seg.first, expect)
		}
		data, err := fsys.ReadFile(seg.name)
		if err != nil {
			return stats, err
		}
		stats.Segments++
		final := i == len(segs)-1
		off := int64(0)
		for off < int64(len(data)) {
			lsn, payload, next, ok := parseRecord(data, off)
			if !ok {
				if !final {
					return stats, fmt.Errorf("%w: bad record in %s at offset %d", ErrCorrupt, seg.name, off)
				}
				if cerr := classifyInvalid(data, off); cerr != nil {
					return stats, fmt.Errorf("wal: segment %s: %w", seg.name, cerr)
				}
				// The one legitimate shape of damage: a record the crash
				// tore, extending to the end of the log.
				stats.TornTail = true
				return stats, nil
			}
			if lsn != expect {
				return stats, fmt.Errorf("%w: record in %s at offset %d has lsn %d, want %d", ErrCorrupt, seg.name, off, lsn, expect)
			}
			if lsn > after {
				if err := apply(lsn, payload); err != nil {
					return stats, err
				}
				stats.Records++
			} else {
				stats.Skipped++
			}
			stats.LastLSN = lsn
			expect = lsn + 1
			off = next
		}
	}
	return stats, nil
}

// Package wal is the durability subsystem's write-ahead log: an append-only
// sequence of committed DML/DDL batches, segmented, CRC-guarded, and
// replayable to a byte-exact-deterministic state.
//
// Design rules, in the spirit of the repo's other infrastructure layers:
//
//   - Zero dependencies beyond the standard library and the repo's own wire
//     encoding primitives.
//   - Deterministic by construction: records carry dense LSNs, segments are
//     named by their first LSN, replay applies records in LSN order — two
//     recoveries of the same bytes produce identical databases.
//   - Crash-honest: a truncated or bit-flipped final record (what a killed
//     append leaves behind) is cleanly dropped; damage anywhere else in the
//     log is a typed error, never a silent prefix.
//   - Group commit: concurrent committers share fsyncs. A committer that
//     finds the durable watermark already past its LSN returns without
//     touching the disk; one fsync covers every record appended before it.
//
// The log stores opaque payloads; EncodeStatements/DecodeStatements are the
// batch codec internal/durable uses on top.
package wal

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCorrupt marks damage in the body of the log — a record that fails its
// CRC or a hole in the LSN sequence anywhere other than the torn tail a
// crash legitimately leaves. Recovery must stop and surface it rather than
// silently dropping acknowledged batches.
var ErrCorrupt = errors.New("wal: log corrupt")

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs before a commit is acknowledged (group-committed
	// across concurrent writers). Survives OS crashes and power cuts.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges immediately and fsyncs on a timer: commits
	// survive process kills always, and OS crashes up to the interval.
	SyncInterval
	// SyncOff never fsyncs; the OS flushes when it pleases. Commits survive
	// process kills (the bytes are in the page cache) but not OS crashes.
	SyncOff
)

// String names the policy ("always", "interval", "off").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// ParseSyncPolicy parses "always", "interval", or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off", "none":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval, or off)", s)
}

// DefaultSegmentBytes is the rotation budget when Options leaves it zero.
const DefaultSegmentBytes = 4 << 20

// DefaultSyncInterval is the SyncInterval flush period when unset.
const DefaultSyncInterval = 50 * time.Millisecond

// Options configures a Log.
type Options struct {
	// FS is the directory the log lives in (required).
	FS FS
	// SegmentBytes rotates to a fresh segment once the current one reaches
	// this size (0 = DefaultSegmentBytes). A record always fits: a segment
	// holds at least one record regardless of budget.
	SegmentBytes int64
	// Policy selects the fsync discipline (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval flush period (0 = DefaultSyncInterval).
	Interval time.Duration
	// NoGroupCommit makes every Sync call perform its own fsync even when
	// the durable watermark already covers its LSN — the A/B knob the
	// durability benchmark uses to measure what group commit buys.
	NoGroupCommit bool
}

// Log is an append-only write-ahead log over an FS. Append/Sync are safe for
// concurrent use; Prune and Close must not race Append.
type Log struct {
	fs      FS
	segMax  int64
	policy  SyncPolicy
	noGroup bool

	mu       sync.Mutex
	seg      File   // current segment, open for append
	segName  string // its file name
	segSize  int64
	nextLSN  uint64 // LSN the next Append will use
	segments []segmentInfo

	// synced is the durable watermark: every record with LSN <= synced has
	// been fsynced (or predates this process). Guarded by syncMu for
	// writers; read via atomic for the group-commit fast path.
	synced atomic.Uint64
	syncMu sync.Mutex

	flushStop chan struct{}
	flushDone chan struct{}

	stats logStats
}

// segmentInfo tracks one on-disk segment.
type segmentInfo struct {
	name  string
	first uint64 // first LSN the segment holds (its name)
}

// logStats is the Log's atomic counter block.
type logStats struct {
	records      atomic.Int64
	bytes        atomic.Int64
	fsyncs       atomic.Int64
	syncRequests atomic.Int64
	groupShared  atomic.Int64 // Sync calls satisfied by someone else's fsync
	rotations    atomic.Int64
	pruned       atomic.Int64
}

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// segName formats the segment file name holding records from first on.
func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

// parseSegName extracts the first-LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(hex, "%016x", &v); err != nil {
		return 0, false
	}
	return v, true
}

// listSegments returns the FS's segment files sorted by first LSN.
func listSegments(fs FS) ([]segmentInfo, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, name := range names {
		if first, ok := parseSegName(name); ok {
			segs = append(segs, segmentInfo{name: name, first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// Open opens (or creates) the log in opts.FS for appending. base is the LSN
// the log continues from when it holds no records — the newest checkpoint's
// LSN — so the first appended record gets base+1; an existing log overrides
// it with its own last valid LSN. A torn tail left by a crash is physically
// truncated away here, once, so appends land on a clean record boundary.
func Open(opts Options, base uint64) (*Log, error) {
	if opts.FS == nil {
		return nil, errors.New("wal: Options.FS is required")
	}
	l := &Log{
		fs:      opts.FS,
		segMax:  opts.SegmentBytes,
		policy:  opts.Policy,
		noGroup: opts.NoGroupCommit,
	}
	if l.segMax <= 0 {
		l.segMax = DefaultSegmentBytes
	}
	segs, err := listSegments(opts.FS)
	if err != nil {
		return nil, err
	}
	l.segments = segs
	last := base
	if len(segs) > 0 {
		// Scan the final segment for its last valid record and drop a torn
		// tail; earlier segments are validated by Replay, which recovery
		// runs before opening the log for append.
		tail := segs[len(segs)-1]
		data, err := opts.FS.ReadFile(tail.name)
		if err != nil {
			return nil, err
		}
		end := int64(0)
		lastInSeg := tail.first - 1
		for end < int64(len(data)) {
			lsn, _, next, ok := parseRecord(data, end)
			if !ok {
				break
			}
			lastInSeg, end = lsn, next
		}
		if end < int64(len(data)) {
			if cerr := classifyInvalid(data, end); cerr != nil {
				return nil, fmt.Errorf("wal: segment %s: %w", tail.name, cerr)
			}
			if err := opts.FS.Truncate(tail.name, end); err != nil {
				return nil, fmt.Errorf("wal: dropping torn tail of %s: %w", tail.name, err)
			}
		}
		if lastInSeg >= tail.first {
			last = lastInSeg
		} else if tail.first > 0 {
			// Empty (or fully torn) segment: it starts where the previous
			// one ended.
			last = tail.first - 1
		}
		l.seg, err = opts.FS.OpenAppend(tail.name)
		if err != nil {
			return nil, err
		}
		l.segName = tail.name
		l.segSize = end
	} else {
		name := segName(base + 1)
		l.seg, err = opts.FS.OpenAppend(name)
		if err != nil {
			return nil, err
		}
		l.segName = name
		l.segSize = 0
		l.segments = []segmentInfo{{name: name, first: base + 1}}
	}
	l.nextLSN = last + 1
	l.synced.Store(last)
	if l.policy == SyncInterval {
		interval := opts.Interval
		if interval <= 0 {
			interval = DefaultSyncInterval
		}
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop(interval)
	}
	return l, nil
}

// Append writes one record and returns its LSN. The record is in the OS (or
// MemFS) write stream when Append returns but not necessarily durable — call
// Sync(lsn) before acknowledging the commit under SyncAlways.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg == nil {
		return 0, errors.New("wal: log is closed")
	}
	if int64(len(payload)) > MaxRecordPayload {
		return 0, fmt.Errorf("wal: record payload %d bytes exceeds maximum %d", len(payload), MaxRecordPayload)
	}
	size := recordSize(payload)
	if l.segSize > 0 && l.segSize+size > l.segMax {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	rec := appendRecord(make([]byte, 0, size), lsn, payload)
	if _, err := l.seg.Write(rec); err != nil {
		// The write may be torn; poison the log so no later append can
		// frame-shift past the damage. Recovery drops the tail.
		l.seg.Close()
		l.seg = nil
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segSize += size
	l.nextLSN = lsn + 1
	l.stats.records.Add(1)
	l.stats.bytes.Add(size)
	return lsn, nil
}

// rotateLocked seals the current segment and starts a new one named by the
// next LSN. The sealed segment is fsynced (unless SyncOff), so the durable
// watermark can advance past everything it holds.
func (l *Log) rotateLocked() error {
	if l.policy != SyncOff {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: rotate sync: %w", err)
		}
		l.stats.fsyncs.Add(1)
		if sealed := l.nextLSN - 1; sealed > l.synced.Load() {
			l.synced.Store(sealed)
		}
	}
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	name := segName(l.nextLSN)
	seg, err := l.fs.OpenAppend(name)
	if err != nil {
		return err
	}
	l.seg = seg
	l.segName = name
	l.segSize = 0
	l.segments = append(l.segments, segmentInfo{name: name, first: l.nextLSN})
	l.stats.rotations.Add(1)
	return nil
}

// Sync makes every record up to lsn durable, per the policy:
//
//   - SyncAlways: blocks until an fsync covers lsn. Concurrent callers group
//     commit — one fsync acknowledges every record appended before it.
//   - SyncInterval / SyncOff: returns immediately; durability is the flush
//     timer's (or the OS's) business.
func (l *Log) Sync(lsn uint64) error {
	if l.policy != SyncAlways {
		return nil
	}
	l.stats.syncRequests.Add(1)
	if !l.noGroup && l.synced.Load() >= lsn {
		l.stats.groupShared.Add(1)
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if !l.noGroup && l.synced.Load() >= lsn {
		l.stats.groupShared.Add(1)
		return nil
	}
	return l.syncCurrent()
}

// syncCurrent fsyncs the live segment and advances the watermark to the last
// record appended before the fsync began. Callers hold syncMu.
func (l *Log) syncCurrent() error {
	l.mu.Lock()
	seg := l.seg
	covered := l.nextLSN - 1
	l.mu.Unlock()
	if seg == nil {
		return errors.New("wal: log is closed")
	}
	if err := seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.stats.fsyncs.Add(1)
	if covered > l.synced.Load() {
		l.synced.Store(covered)
	}
	return nil
}

// flushLoop is the SyncInterval timer.
func (l *Log) flushLoop(interval time.Duration) {
	defer close(l.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.syncMu.Lock()
			l.syncCurrent() // best-effort; a dead FS surfaces on Append/Close
			l.syncMu.Unlock()
		}
	}
}

// LastLSN returns the LSN of the most recently appended record (or the base
// the log was opened at, when nothing has been appended).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// SyncedLSN returns the durable watermark.
func (l *Log) SyncedLSN() uint64 { return l.synced.Load() }

// Prune removes segments every one of whose records is covered by a
// checkpoint at lsn. The live segment is never removed.
func (l *Log) Prune(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segments[:0]
	for i, seg := range l.segments {
		// A segment's records end where the next segment starts; the last
		// (live) segment is always kept.
		if i+1 < len(l.segments) && l.segments[i+1].first <= lsn+1 && seg.name != l.segName {
			if err := l.fs.Remove(seg.name); err != nil {
				return fmt.Errorf("wal: prune %s: %w", seg.name, err)
			}
			l.stats.pruned.Add(1)
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = append([]segmentInfo(nil), kept...)
	return nil
}

// Close stops the flush timer, makes the log durable (unless SyncOff), and
// releases the segment handle.
func (l *Log) Close() error {
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
		l.flushStop = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.seg == nil {
		return nil
	}
	var err error
	if l.policy != SyncOff {
		if serr := l.seg.Sync(); serr != nil {
			err = serr
		} else {
			l.stats.fsyncs.Add(1)
			if covered := l.nextLSN - 1; covered > l.synced.Load() {
				l.synced.Store(covered)
			}
		}
	}
	if cerr := l.seg.Close(); err == nil {
		err = cerr
	}
	l.seg = nil
	return err
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs := len(l.segments)
	l.mu.Unlock()
	return Stats{
		Records:      l.stats.records.Load(),
		Bytes:        l.stats.bytes.Load(),
		Fsyncs:       l.stats.fsyncs.Load(),
		SyncRequests: l.stats.syncRequests.Load(),
		GroupShared:  l.stats.groupShared.Load(),
		Rotations:    l.stats.rotations.Load(),
		Pruned:       l.stats.pruned.Load(),
		Segments:     int64(segs),
	}
}

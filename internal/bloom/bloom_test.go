package bloom

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"resultdb/internal/types"
)

func TestNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := New(1000, 0.01)
	var inserted []uint64
	for i := 0; i < 1000; i++ {
		h := rng.Uint64()
		f.AddHash(h)
		inserted = append(inserted, h)
	}
	for _, h := range inserted {
		if !f.ContainsHash(h) {
			t.Fatalf("false negative for %x", h)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 10000
	f := New(n, 0.01)
	member := map[uint64]bool{}
	for i := 0; i < n; i++ {
		h := rng.Uint64()
		f.AddHash(h)
		member[h] = true
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		h := rng.Uint64()
		if member[h] {
			continue
		}
		if f.ContainsHash(h) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.05 {
		t.Errorf("false positive rate %.3f far above target 0.01", rate)
	}
	if est := f.EstimatedFPRate(); est <= 0 || est > 0.2 {
		t.Errorf("estimated fp rate %.4f implausible", est)
	}
}

func TestKeySemantics(t *testing.T) {
	f := New(10, 0.01)
	row := types.Row{types.NewInt(7), types.NewText("x")}
	f.AddKey(row, []int{0, 1})
	if !f.ContainsKey(types.Row{types.NewInt(7), types.NewText("x")}, []int{0, 1}) {
		t.Error("inserted key not found")
	}
	// NULL keys: never inserted, never matched.
	nullRow := types.Row{types.Null(), types.NewText("x")}
	f.AddKey(nullRow, []int{0, 1})
	if f.Len() != 1 {
		t.Errorf("NULL key inserted; Len = %d", f.Len())
	}
	if f.ContainsKey(nullRow, []int{0, 1}) {
		t.Error("NULL probe matched")
	}
	// Numeric cross-kind equality carries through hashing.
	f.AddKey(types.Row{types.NewInt(3)}, []int{0})
	if !f.ContainsKey(types.Row{types.NewFloat(3)}, []int{0}) {
		t.Error("3 and 3.0 must be filter-equal")
	}
}

func TestSizingEdgeCases(t *testing.T) {
	for _, f := range []*Filter{New(0, 0.01), New(1, -1), New(5, 2)} {
		f.AddHash(42)
		if !f.ContainsHash(42) {
			t.Error("degenerate sizing lost an element")
		}
		if f.Bits() < 64 {
			t.Errorf("Bits = %d, want >= 64", f.Bits())
		}
	}
}

// TestQuickNoFalseNegative property-checks the no-false-negative guarantee.
func TestQuickNoFalseNegative(t *testing.T) {
	f := func(hs []uint64) bool {
		flt := New(len(hs), 0.02)
		for _, h := range hs {
			flt.AddHash(h)
		}
		for _, h := range hs {
			if !flt.ContainsHash(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAtomicBuildMatchesSerial checks that a concurrent atomic build sets
// exactly the same bits as the serial build (the OR of bit sets is
// order-independent) and never loses an insertion under contention.
func TestAtomicBuildMatchesSerial(t *testing.T) {
	const n = 5000
	serial := New(n, 0.01)
	par := New(n, 0.01)
	for i := 0; i < n; i++ {
		serial.AddHash(uint64(i) * 0x9e3779b97f4a7c15)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < n; i += workers {
				par.AddHashAtomic(uint64(i) * 0x9e3779b97f4a7c15)
			}
		}()
	}
	wg.Wait()
	if par.Len() != serial.Len() {
		t.Fatalf("atomic build lost insertions: %d vs %d", par.Len(), serial.Len())
	}
	if len(par.bits) != len(serial.bits) {
		t.Fatalf("size mismatch")
	}
	for i := range par.bits {
		if par.bits[i] != serial.bits[i] {
			t.Fatalf("bit word %d differs: %x vs %x", i, par.bits[i], serial.bits[i])
		}
	}
	for i := 0; i < n; i++ {
		if !par.ContainsHash(uint64(i) * 0x9e3779b97f4a7c15) {
			t.Fatalf("false negative after atomic build: %d", i)
		}
	}
}

package bloom

import (
	"math"
	"testing"

	"resultdb/internal/types"
)

func TestNewBudgetClampsBytes(t *testing.T) {
	const budget = 1 << 10 // 1 KiB = 8192 bits
	f := NewBudget(10_000_000, 0.001, budget)
	if f.Bits() > budget*8 {
		t.Fatalf("filter uses %d bits, budget allows %d", f.Bits(), budget*8)
	}
	if f.k < 1 || f.k > 8 {
		t.Fatalf("k = %d out of [1,8]", f.k)
	}
	// Still no false negatives after clamping.
	for i := 0; i < 1000; i++ {
		f.AddHash(uint64(i) * 0x9e3779b97f4a7c15)
	}
	for i := 0; i < 1000; i++ {
		if !f.ContainsHash(uint64(i) * 0x9e3779b97f4a7c15) {
			t.Fatalf("false negative at %d after budget clamp", i)
		}
	}
}

func TestNewDefaultBudget(t *testing.T) {
	// A huge n with a tiny fp rate must cap at DefaultMaxBytes instead of
	// attempting a multi-gigabyte (or overflowed) allocation.
	f := New(math.MaxInt32, 1e-9)
	if f.Bits() > DefaultMaxBytes*8 {
		t.Fatalf("filter uses %d bits, default budget allows %d", f.Bits(), DefaultMaxBytes*8)
	}
}

func TestNewDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		n    int
		fp   float64
	}{
		{"zero n", 0, 0.01},
		{"negative n", -5, 0.01},
		{"fp zero", 100, 0},
		{"fp one", 100, 1},
		{"fp above one", 100, 42},
		{"fp negative", 100, -0.5},
		{"fp NaN", 100, math.NaN()},
		{"fp near one rounds k to zero", 100, 0.99},
		{"fp subnormal", 100, 5e-324},
		{"huge n", math.MaxInt64, 0.01},
		{"huge n huge fp", math.MaxInt64, 0.9999},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := New(c.n, c.fp)
			if f.k < 1 || f.k > 8 {
				t.Fatalf("k = %d out of [1,8]", f.k)
			}
			if f.Bits() < 64 {
				t.Fatalf("bits = %d below minimum", f.Bits())
			}
			if f.Bits() > DefaultMaxBytes*8 {
				t.Fatalf("bits = %d above default budget", f.Bits())
			}
			if f.Bits()%64 != 0 {
				t.Fatalf("bits = %d not word-aligned", f.Bits())
			}
			// Basic no-false-negative sanity on every degenerate shape.
			key := types.Row{types.NewInt(7), types.NewText("x")}
			f.AddKey(key, []int{0, 1})
			if !f.ContainsKey(key, []int{0, 1}) {
				t.Fatal("false negative on inserted key")
			}
		})
	}
}

func TestNewBudgetTinyBudget(t *testing.T) {
	// Budgets below one word are raised to the 64-bit minimum.
	f := NewBudget(1000, 0.01, 0)
	if f.Bits() != 64 {
		t.Fatalf("bits = %d, want 64 for sub-word budget", f.Bits())
	}
}

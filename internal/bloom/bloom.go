// Package bloom implements a split block Bloom filter used as an optional
// pre-filtering pass in the RESULTDB-SEMIJOIN algorithm.
//
// The paper's related work (Section 5, "predicate transfer", Yang et al.)
// replaces exact semi-joins with Bloom-filter passes for speed, but notes
// that ResultDB cannot adopt this directly: a Bloom filter admits false
// positives, and ResultDB returns the filtered relations themselves rather
// than feeding them into a final join that would weed out the strays. The
// compromise implemented here (core.Options.BloomPrefilter) keeps exactness:
// a cheap Bloom pass first shrinks the relations, then the exact semi-join
// passes run on the smaller inputs. False positives only cost a little
// wasted work in the exact pass; false negatives are impossible.
package bloom

import (
	"math"
	"sync/atomic"

	"resultdb/internal/types"
)

// Filter is a standard partitioned Bloom filter over 64-bit hashes.
//
// Two build modes exist: the plain Add* methods are single-goroutine, the
// Add*Atomic methods may be called concurrently from the morsel workers of
// the parallel prefilter build (internal/core). Probing (Contains*) is
// read-only and always safe concurrently once the build is complete.
type Filter struct {
	bits   []uint64
	k      int
	nBits  uint64
	numAdd int64
}

// DefaultMaxBytes is the allocation budget New applies: no single filter
// grows past this many bytes of bit array regardless of n and fpRate. At the
// optimal ~9.6 bits/element for 1% fp, 16 MiB covers ~14M build keys; beyond
// that the filter degrades gracefully (higher fp rate) instead of exhausting
// memory on a pathological estimate.
const DefaultMaxBytes = 16 << 20

// New sizes a filter for n expected elements at the given false-positive
// rate, clamped to sane bounds and the DefaultMaxBytes budget.
func New(n int, fpRate float64) *Filter {
	return NewBudget(n, fpRate, DefaultMaxBytes)
}

// NewBudget is New with an explicit byte budget for the bit array. Degenerate
// inputs are clamped rather than rejected: n < 1 counts as 1, fpRate outside
// (0,1) (including NaN) falls back to 1%, a bit count that would overflow or
// exceed the budget is capped at the budget, and the hash count k always
// lands in [1,8] (the optimal k rounds to 0 for fpRate near 1 and grows
// unbounded for tiny fpRate; both ends are clamped).
func NewBudget(n int, fpRate float64, maxBytes int) *Filter {
	if n < 1 {
		n = 1
	}
	if math.IsNaN(fpRate) || fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	if maxBytes < 8 {
		maxBytes = 8
	}
	maxBits := uint64(maxBytes) * 8
	// Optimal bits per element: -ln(p) / ln(2)^2.
	bitsPerElem := -math.Log(fpRate) / (math.Ln2 * math.Ln2)
	// Budget/overflow clamp in the float domain: float64(n)*bitsPerElem can
	// exceed 2^63 (or reach +Inf for subnormal fpRate), where a direct
	// uint64 conversion is implementation-defined.
	fBits := float64(n) * bitsPerElem
	var nBits uint64
	if !(fBits < float64(maxBits)) {
		nBits = maxBits
	} else {
		nBits = uint64(math.Ceil(fBits))
	}
	if nBits < 64 {
		nBits = 64
	}
	if nBits > maxBits && maxBits >= 64 {
		nBits = maxBits
	}
	k := int(math.Round(bitsPerElem * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	words := (nBits + 63) / 64
	return &Filter{bits: make([]uint64, words), k: k, nBits: words * 64}
}

// splitHash derives k probe positions from one 64-bit hash using the
// Kirsch-Mitzenmacher double-hashing scheme.
func (f *Filter) probe(h uint64, i int) uint64 {
	h1 := h
	h2 := h>>33 | h<<31
	return (h1 + uint64(i)*h2) % f.nBits
}

// AddHash inserts a precomputed 64-bit hash.
func (f *Filter) AddHash(h uint64) {
	for i := 0; i < f.k; i++ {
		p := f.probe(h, i)
		f.bits[p/64] |= 1 << (p % 64)
	}
	f.numAdd++
}

// AddHashAtomic inserts a precomputed hash with atomic bit sets; safe to call
// concurrently with other Add*Atomic calls (but not with plain Add* calls or
// with probes). Used by the parallel prefilter build.
func (f *Filter) AddHashAtomic(h uint64) {
	for i := 0; i < f.k; i++ {
		p := f.probe(h, i)
		w := &f.bits[p/64]
		mask := uint64(1) << (p % 64)
		for {
			old := atomic.LoadUint64(w)
			if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
				break
			}
		}
	}
	atomic.AddInt64(&f.numAdd, 1)
}

// AddKeyAtomic is AddKey with atomic bit sets (see AddHashAtomic). Keys
// containing NULL are skipped.
func (f *Filter) AddKeyAtomic(row types.Row, cols []int) {
	for _, c := range cols {
		if row[c].IsNull() {
			return
		}
	}
	f.AddHashAtomic(row.HashKey(cols))
}

// ContainsHash tests a precomputed hash. False positives possible, false
// negatives not.
func (f *Filter) ContainsHash(h uint64) bool {
	for i := 0; i < f.k; i++ {
		p := f.probe(h, i)
		if f.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// AddKey inserts the projection of row onto cols. Keys containing NULL are
// skipped (they can never join).
func (f *Filter) AddKey(row types.Row, cols []int) {
	for _, c := range cols {
		if row[c].IsNull() {
			return
		}
	}
	f.AddHash(row.HashKey(cols))
}

// ContainsKey probes the projection of row onto cols. NULL keys never match.
func (f *Filter) ContainsKey(row types.Row, cols []int) bool {
	for _, c := range cols {
		if row[c].IsNull() {
			return false
		}
	}
	return f.ContainsHash(row.HashKey(cols))
}

// Len returns the number of inserted keys.
func (f *Filter) Len() int { return int(f.numAdd) }

// Bits returns the filter size in bits (for size accounting in benches).
func (f *Filter) Bits() int { return int(f.nBits) }

// EstimatedFPRate reports the expected false-positive probability given the
// current fill.
func (f *Filter) EstimatedFPRate() float64 {
	// p = (1 - e^{-kn/m})^k
	exp := -float64(f.k) * float64(f.numAdd) / float64(f.nBits)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// Package trace is the execution-observability layer of the reproduction:
// a zero-dependency tracer recording per-operator spans (cardinalities,
// build/probe wall time, parallel degree, morsel counts) and a handful of
// atomic whole-query counters while a query runs.
//
// Design rules:
//
//   - Off by default, near-zero cost when disabled: every method on a nil
//     *Tracer is a no-op (single nil check), so operators thread an optional
//     tracer without branching on a config struct, and per-row hot loops
//     never touch the tracer at all — spans are recorded once per operator.
//   - Race-safe: span registration takes a mutex, whole-query counters are
//     atomics. Span field writes happen only on the coordinating goroutine
//     (operators record a span after their parallel section completes), so
//     the recorded counts are in deterministic program order.
//   - Deterministic counts: rows, keys and bytes in a trace are identical at
//     any degree of parallelism. Wall times, the degree itself, and morsel
//     counts may differ between runs; CountsFingerprint excludes them.
//
// EXPLAIN, EXPLAIN ANALYZE, db.QueryWithTrace, and the -trace CLI flags all
// render from this one structure (see render.go), so there is exactly one
// plan-rendering path.
package trace

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// Span records one operator execution. Fields are filled by the operator
// after it finishes; times are nanoseconds so the struct marshals without
// custom encoders.
type Span struct {
	// Op identifies the operator: scan, hash-join, cross-join, semi-join,
	// bloom-semi-join, fold, root, residual-filter, project, decompose,
	// output, encode, note.
	Op string `json:"op"`
	// Label names the operator's target (relation alias, "a ⋉ b", ...).
	Label string `json:"label,omitempty"`
	// Phase groups spans into plan stages: scan, join, fold,
	// bloom-prefilter, bottom-up, top-down, decompose, output, wire.
	Phase string `json:"phase,omitempty"`
	// Detail carries operator-specific text (filter SQL, projection list,
	// note text).
	Detail string `json:"detail,omitempty"`

	// RowsIn is the cardinality of the primary (probe/outer) input.
	RowsIn int `json:"rows_in"`
	// RowsBuild is the cardinality of the secondary (build/source) input,
	// when the operator has one.
	RowsBuild int `json:"rows_build,omitempty"`
	// RowsOut is the output cardinality.
	RowsOut int `json:"rows_out"`
	// Keys is the number of equi-join key columns of a join.
	Keys int `json:"keys,omitempty"`
	// Bytes is the wire size attributed to this span (output and encode
	// spans).
	Bytes int `json:"bytes,omitempty"`

	// Vec marks an operator that ran on the vectorized (colstore) path.
	// Run-invariant for a fixed configuration but excluded from
	// CountsFingerprint so vectorized and row-path executions of the same
	// query fingerprint identically — the flag is the only allowed
	// difference between the two traces.
	Vec bool `json:"vec,omitempty"`
	// Dict is the total number of distinct dictionary entries across the
	// TEXT columns of a vectorized scan's frame. Excluded from
	// CountsFingerprint (like Vec).
	Dict int `json:"dict,omitempty"`

	// Par is the effective degree of parallelism the operator ran at.
	Par int `json:"par,omitempty"`
	// Morsels is the number of row chunks the probe/scan was split into.
	Morsels int `json:"morsels,omitempty"`
	// BuildNS and ProbeNS split a join's wall time into its two phases.
	BuildNS int64 `json:"build_ns,omitempty"`
	// ProbeNS is the probe/apply phase wall time.
	ProbeNS int64 `json:"probe_ns,omitempty"`
	// DurNS is the operator's total wall time when the build/probe split
	// does not apply.
	DurNS int64 `json:"dur_ns,omitempty"`

	// EstOut is the cost-based planner's estimated output cardinality for
	// this operator, 0 when planning ran without statistics. Rendered only
	// inside the strippable [...] bracket (estimated-vs-actual) and excluded
	// from CountsFingerprint so cost-based and heuristic executions of the
	// same plan shape fingerprint identically.
	EstOut int `json:"est_out,omitempty"`
	// RangeSkipped counts probe rows dropped by the sideways-information-
	// passing min/max range prefilter before hashing. Excluded from
	// CountsFingerprint (like Vec); rendered in the [...] bracket.
	RangeSkipped int `json:"range_skipped,omitempty"`
}

// Counters are whole-query totals, bumped atomically so operators may update
// them from any goroutine.
type Counters struct {
	RowsScanned int64 `json:"rows_scanned"`
	RowsJoined  int64 `json:"rows_joined"`
	RowsDropped int64 `json:"rows_dropped"`
	RowsOut     int64 `json:"rows_out"`
	BytesOut    int64 `json:"bytes_out"`
}

// Tracer collects spans and counters for one query execution. The zero value
// is not used directly; create one with New. A nil *Tracer is the disabled
// tracer: every method is a cheap no-op.
type Tracer struct {
	mu    sync.Mutex
	spans []*Span
	start time.Time

	query       string
	mode        string
	strategy    string
	parallelism int
	outputs     []string
	stats       string
	cache       string
	hasSnap     bool
	snapSeq     uint64
	snapLSN     uint64

	rowsScanned atomic.Int64
	rowsJoined  atomic.Int64
	rowsDropped atomic.Int64
	rowsOut     atomic.Int64
	bytesOut    atomic.Int64
}

// New returns an enabled tracer for one query execution.
func New(query string) *Tracer {
	return &Tracer{query: query, start: time.Now()}
}

// Enabled reports whether the tracer records anything. The nil receiver is
// the disabled fast path.
func (t *Tracer) Enabled() bool { return t != nil }

// Span registers and returns a new span; the caller fills its fields before
// the query finishes. Returns nil on a disabled tracer.
func (t *Tracer) Span(op, label string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{Op: op, Label: label}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// Note records a free-text plan annotation in program order.
func (t *Tracer) Note(text string) {
	if t == nil {
		return
	}
	sp := t.Span("note", "")
	sp.Detail = text
}

// SetQuery overrides the traced query text.
func (t *Tracer) SetQuery(q string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.query = q
	t.mu.Unlock()
}

// SetMode records the query mode: single-table, resultdb,
// resultdb-preserving.
func (t *Tracer) SetMode(m string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.mode = m
	t.mu.Unlock()
}

// SetStrategy records the execution strategy: spj, sequential, semijoin,
// decompose.
func (t *Tracer) SetStrategy(s string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.strategy = s
	t.mu.Unlock()
}

// SetParallelism records the effective degree of parallelism.
func (t *Tracer) SetParallelism(p int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.parallelism = p
	t.mu.Unlock()
}

// SetOutputs records the output relation aliases in result order.
func (t *Tracer) SetOutputs(aliases []string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.outputs = append([]string(nil), aliases...)
	t.mu.Unlock()
}

// SetCacheStatus records the result-cache outcome for the traced statement:
// "hit" (a fresh cached entry exists for its fingerprint) or "miss". Empty
// means the cache was disabled. Rendered by EXPLAIN ANALYZE inside the
// strippable bracket section (run-varying, like wall times), and excluded
// from CountsFingerprint.
func (t *Tracer) SetCacheStatus(s string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cache = s
	t.mu.Unlock()
}

// SetSnapshot records the commit position the traced statement pinned: the
// MVCC publish sequence number and the durable log LSN of its snapshot.
// Run-varying (depends on how many commits preceded the query), so it is
// rendered only inside the strippable bracket section of EXPLAIN ANALYZE
// and excluded from CountsFingerprint — classic EXPLAIN output is
// byte-stable across snapshots.
func (t *Tracer) SetSnapshot(seq, lsn uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hasSnap = true
	t.snapSeq = seq
	t.snapLSN = lsn
	t.mu.Unlock()
}

// SetStats records the core algorithm's one-line stats summary.
func (t *Tracer) SetStats(s string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stats = s
	t.mu.Unlock()
}

// AddRowsScanned bumps the scanned-rows counter.
func (t *Tracer) AddRowsScanned(n int) {
	if t == nil {
		return
	}
	t.rowsScanned.Add(int64(n))
}

// AddRowsJoined bumps the join-output counter.
func (t *Tracer) AddRowsJoined(n int) {
	if t == nil {
		return
	}
	t.rowsJoined.Add(int64(n))
}

// AddRowsDropped bumps the semi-join/filter drop counter.
func (t *Tracer) AddRowsDropped(n int) {
	if t == nil {
		return
	}
	t.rowsDropped.Add(int64(n))
}

// AddRowsOut bumps the result-rows counter.
func (t *Tracer) AddRowsOut(n int) {
	if t == nil {
		return
	}
	t.rowsOut.Add(int64(n))
}

// AddBytes bumps the result-bytes counter.
func (t *Tracer) AddBytes(n int) {
	if t == nil {
		return
	}
	t.bytesOut.Add(int64(n))
}

// Trace is an immutable snapshot of a finished execution; the unit the JSON
// emitters and the EXPLAIN renderers consume.
type Trace struct {
	Query       string   `json:"query,omitempty"`
	Mode        string   `json:"mode,omitempty"`
	Strategy    string   `json:"strategy,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	Outputs     []string `json:"outputs,omitempty"`
	Stats       string   `json:"stats,omitempty"`
	// Cache is the result-cache outcome ("hit", "miss", or "" when the cache
	// is off). Run-varying: excluded from CountsFingerprint and rendered only
	// inside the strippable bracket section of EXPLAIN ANALYZE.
	Cache string `json:"cache,omitempty"`
	// HasSnapshot/SnapshotSeq/SnapshotLSN identify the MVCC snapshot the
	// statement executed against (publish sequence and durable LSN).
	// Run-varying: excluded from CountsFingerprint and rendered only inside
	// the strippable bracket section of EXPLAIN ANALYZE.
	HasSnapshot bool     `json:"has_snapshot,omitempty"`
	SnapshotSeq uint64   `json:"snapshot_seq,omitempty"`
	SnapshotLSN uint64   `json:"snapshot_lsn,omitempty"`
	WallNS      int64    `json:"wall_ns"`
	Counters    Counters `json:"counters"`
	Spans       []Span   `json:"spans"`
}

// Finish snapshots the tracer into a Trace. Returns nil on a disabled
// tracer. The tracer must not record further spans afterwards.
func (t *Tracer) Finish() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := &Trace{
		Query:       t.query,
		Mode:        t.mode,
		Strategy:    t.strategy,
		Parallelism: t.parallelism,
		Outputs:     append([]string(nil), t.outputs...),
		Stats:       t.stats,
		Cache:       t.cache,
		HasSnapshot: t.hasSnap,
		SnapshotSeq: t.snapSeq,
		SnapshotLSN: t.snapLSN,
		WallNS:      time.Since(t.start).Nanoseconds(),
		Counters: Counters{
			RowsScanned: t.rowsScanned.Load(),
			RowsJoined:  t.rowsJoined.Load(),
			RowsDropped: t.rowsDropped.Load(),
			RowsOut:     t.rowsOut.Load(),
			BytesOut:    t.bytesOut.Load(),
		},
		Spans: make([]Span, len(t.spans)),
	}
	for i, sp := range t.spans {
		tr.Spans[i] = *sp
	}
	return tr
}

// JSON marshals the trace (indented, stable field order).
func (tr *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(tr, "", "  ")
}

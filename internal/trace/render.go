package trace

import (
	"fmt"
	"strings"
)

// CompactLines renders the trace in the classic EXPLAIN format: one line per
// plan step with actual cardinalities, no timings (the output is fully
// deterministic for a deterministic plan). EXPLAIN uses it.
func (tr *Trace) CompactLines() []string {
	var lines []string
	resultDB := tr.Mode == "resultdb" || tr.Mode == "resultdb-preserving"
	switch {
	case resultDB:
		lines = append(lines, "RESULTDB plan (Algorithm 4, actual cardinalities)")
		lines = append(lines, fmt.Sprintf("output relations: %v", tr.Outputs))
	case tr.Mode == "single-table" && tr.Strategy != "sequential":
		lines = append(lines, "single-table plan (greedy hash-join order, actual cardinalities)")
	}
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		switch sp.Op {
		case "note":
			lines = append(lines, sp.Detail)
		case "scan":
			lines = append(lines, fmt.Sprintf("scan %s  filter: %s  rows: %d -> %d",
				sp.Label, sp.Detail, sp.RowsIn, sp.RowsOut))
		case "hash-join":
			lines = append(lines, fmt.Sprintf("hash join + %s  keys: %d  rows: %d x %d -> %d",
				sp.Label, sp.Keys, sp.RowsIn, sp.RowsBuild, sp.RowsOut))
		case "cross-join":
			lines = append(lines, fmt.Sprintf("cross join + %s  keys: %d  rows: %d x %d -> %d",
				sp.Label, sp.Keys, sp.RowsIn, sp.RowsBuild, sp.RowsOut))
		case "residual-filter":
			lines = append(lines, fmt.Sprintf("residual filter: %s  rows: %d -> %d",
				sp.Detail, sp.RowsIn, sp.RowsOut))
		case "project":
			distinct := ""
			if sp.Detail == "distinct" {
				distinct = " distinct"
			}
			lines = append(lines, fmt.Sprintf("project%s [%s]  rows: %d",
				distinct, sp.Label, sp.RowsIn))
		case "fold":
			lines = append(lines, fmt.Sprintf("fold %s  rows: %d x %d -> %d",
				sp.Label, sp.RowsIn, sp.RowsBuild, sp.RowsOut))
		case "root":
			lines = append(lines, fmt.Sprintf("root: %s %s", sp.Label, sp.Detail))
		case "semi-join":
			lines = append(lines, fmt.Sprintf("semi-join %s  rows: %d -> %d",
				sp.Label, sp.RowsIn, sp.RowsOut))
		case "bloom-semi-join":
			lines = append(lines, fmt.Sprintf("bloom semi-join %s  rows: %d -> %d",
				sp.Label, sp.RowsIn, sp.RowsOut))
		case "counter":
			lines = append(lines, fmt.Sprintf("%s: %d", sp.Label, sp.RowsOut))
		case "output":
			switch {
			case resultDB:
				lines = append(lines, fmt.Sprintf("return %s  rows: %d (before projection dedup)",
					sp.Label, sp.RowsIn))
			case tr.Strategy == "sequential":
				lines = append(lines, fmt.Sprintf("result rows: %d", sp.RowsOut))
			}
			// Single-table SPJ output is already covered by the project line.
		}
		// decompose/encode spans carry no classic EXPLAIN line.
	}
	if resultDB && tr.Stats != "" {
		lines = append(lines, "stats: "+tr.Stats)
	}
	return lines
}

// TreeLines renders the trace as the EXPLAIN ANALYZE operator tree: spans
// grouped into phases, each operator annotated with rows-in/rows-out, key
// counts, transfer bytes, and (in a trailing bracket that tooling may strip)
// wall times, parallel degree, and morsel counts.
func (tr *Trace) TreeLines() []string {
	var lines []string
	head := "mode: " + orDash(tr.Mode) + "  strategy: " + orDash(tr.Strategy)
	if tr.Parallelism > 0 {
		head += fmt.Sprintf("  parallelism: %d", tr.Parallelism)
	}
	// The bracket section is strippable: everything inside it is run-varying
	// (wall time, result-cache outcome) and excluded from CountsFingerprint.
	var headAnn []string
	if tr.WallNS > 0 {
		headAnn = append(headAnn, ms(tr.WallNS))
	}
	if tr.Cache != "" {
		headAnn = append(headAnn, "cache: "+tr.Cache)
	}
	if tr.HasSnapshot {
		headAnn = append(headAnn, fmt.Sprintf("snapshot: seq %d, lsn %d", tr.SnapshotSeq, tr.SnapshotLSN))
	}
	if len(headAnn) > 0 {
		head += "  [" + strings.Join(headAnn, ", ") + "]"
	}
	lines = append(lines, head)
	if len(tr.Outputs) > 0 {
		// No [...] here: in TreeLines, square brackets are reserved for the
		// run-varying annotations tooling strips.
		lines = append(lines, "output relations: "+strings.Join(tr.Outputs, ", "))
	}

	// Group consecutive spans by phase; phase-less spans print at top level.
	i := 0
	for i < len(tr.Spans) {
		sp := &tr.Spans[i]
		if sp.Phase == "" {
			lines = append(lines, tr.topLevelLine(sp)...)
			i++
			continue
		}
		j := i
		for j < len(tr.Spans) && tr.Spans[j].Phase == sp.Phase {
			j++
		}
		lines = append(lines, sp.Phase)
		for k := i; k < j; k++ {
			glyph := "├─"
			if k == j-1 {
				glyph = "└─"
			}
			lines = append(lines, "  "+glyph+" "+spanLine(&tr.Spans[k]))
		}
		i = j
	}
	if tr.Stats != "" {
		lines = append(lines, "stats: "+tr.Stats)
	}
	c := tr.Counters
	lines = append(lines, fmt.Sprintf(
		"totals: scanned=%d joined=%d dropped=%d out=%d bytes=%d",
		c.RowsScanned, c.RowsJoined, c.RowsDropped, c.RowsOut, c.BytesOut))
	return lines
}

// topLevelLine renders a phase-less span (notes, root choice) at top level.
func (tr *Trace) topLevelLine(sp *Span) []string {
	switch sp.Op {
	case "note":
		return []string{sp.Detail}
	case "root":
		return []string{fmt.Sprintf("root: %s %s", sp.Label, sp.Detail)}
	default:
		return []string{spanLine(sp)}
	}
}

// spanLine renders one operator with its deterministic counts first and the
// run-varying annotations (times, degree, morsels) in a trailing bracket.
func spanLine(sp *Span) string {
	var b strings.Builder
	switch sp.Op {
	case "scan":
		fmt.Fprintf(&b, "scan %s  filter: %s  rows: %d -> %d", sp.Label, sp.Detail, sp.RowsIn, sp.RowsOut)
	case "hash-join", "cross-join":
		kind := "hash join"
		if sp.Op == "cross-join" {
			kind = "cross join"
		}
		fmt.Fprintf(&b, "%s + %s  keys: %d  rows: %d x %d -> %d", kind, sp.Label, sp.Keys, sp.RowsIn, sp.RowsBuild, sp.RowsOut)
	case "semi-join":
		fmt.Fprintf(&b, "semi-join %s  rows: %d -> %d  (source %d rows)", sp.Label, sp.RowsIn, sp.RowsOut, sp.RowsBuild)
	case "bloom-semi-join":
		fmt.Fprintf(&b, "bloom semi-join %s  rows: %d -> %d  (source %d rows)", sp.Label, sp.RowsIn, sp.RowsOut, sp.RowsBuild)
	case "fold":
		fmt.Fprintf(&b, "fold %s  rows: %d x %d -> %d", sp.Label, sp.RowsIn, sp.RowsBuild, sp.RowsOut)
	case "residual-filter":
		fmt.Fprintf(&b, "residual filter: %s  rows: %d -> %d", sp.Detail, sp.RowsIn, sp.RowsOut)
	case "project":
		distinct := ""
		if sp.Detail == "distinct" {
			distinct = " distinct"
		}
		fmt.Fprintf(&b, "project%s [%s]  rows: %d -> %d", distinct, sp.Label, sp.RowsIn, sp.RowsOut)
	case "decompose":
		fmt.Fprintf(&b, "decompose %s  rows: %d -> %d", sp.Label, sp.RowsIn, sp.RowsOut)
	case "output":
		fmt.Fprintf(&b, "return %s  rows: %d -> %d  bytes: %d", sp.Label, sp.RowsIn, sp.RowsOut, sp.Bytes)
	case "encode":
		fmt.Fprintf(&b, "encode %s  rows: %d  bytes: %d", sp.Label, sp.RowsIn, sp.Bytes)
	case "counter":
		// Operational counters (server stats rendered through the trace
		// pipeline): a bare name/value, no row arrows.
		fmt.Fprintf(&b, "%s: %d", sp.Label, sp.RowsOut)
	case "note":
		b.WriteString(sp.Detail)
	default:
		fmt.Fprintf(&b, "%s %s  rows: %d -> %d", sp.Op, sp.Label, sp.RowsIn, sp.RowsOut)
	}

	var ann []string
	if sp.Vec {
		ann = append(ann, "vectorized")
	}
	if sp.EstOut > 0 {
		ann = append(ann, fmt.Sprintf("est %d, actual %d", sp.EstOut, sp.RowsOut))
	}
	if sp.RangeSkipped > 0 {
		ann = append(ann, fmt.Sprintf("range-skip %d", sp.RangeSkipped))
	}
	if sp.Dict > 0 {
		ann = append(ann, fmt.Sprintf("dict %d", sp.Dict))
	}
	if sp.BuildNS > 0 {
		ann = append(ann, "build "+ms(sp.BuildNS))
	}
	if sp.ProbeNS > 0 {
		ann = append(ann, "probe "+ms(sp.ProbeNS))
	}
	if sp.DurNS > 0 {
		ann = append(ann, ms(sp.DurNS))
	}
	if sp.Par > 1 {
		ann = append(ann, fmt.Sprintf("par %d", sp.Par))
	}
	if sp.Morsels > 1 {
		ann = append(ann, fmt.Sprintf("morsels %d", sp.Morsels))
	}
	if len(ann) > 0 {
		b.WriteString("  [" + strings.Join(ann, ", ") + "]")
	}
	return b.String()
}

// CountsFingerprint canonicalizes the deterministic portion of the trace:
// per-span ops, labels, phases, details, cardinalities, key counts and byte
// counts, plus the whole-query counters. Wall times, the parallel degree and
// morsel counts are excluded, so the fingerprint of a query is bit-identical
// at any degree of parallelism — the invariant the trace tests lock in.
func (tr *Trace) CountsFingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mode=%s strategy=%s outputs=%v\n", tr.Mode, tr.Strategy, tr.Outputs)
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		fmt.Fprintf(&b, "%s|%s|%s|%s|in=%d|build=%d|out=%d|keys=%d|bytes=%d\n",
			sp.Op, sp.Label, sp.Phase, sp.Detail, sp.RowsIn, sp.RowsBuild, sp.RowsOut, sp.Keys, sp.Bytes)
	}
	c := tr.Counters
	fmt.Fprintf(&b, "scanned=%d joined=%d dropped=%d out=%d bytes=%d\n",
		c.RowsScanned, c.RowsJoined, c.RowsDropped, c.RowsOut, c.BytesOut)
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func ms(ns int64) string {
	return fmt.Sprintf("%.2fms", float64(ns)/1e6)
}

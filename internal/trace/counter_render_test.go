package trace

import (
	"strings"
	"testing"
)

// Counter spans (the wire server renders its operational stats through the
// trace pipeline) print as bare name/value lines in both renderers.
func TestCounterSpanRendering(t *testing.T) {
	tr := &Trace{
		Mode: "server-stats",
		Spans: []Span{
			{Op: "counter", Label: "conns_accepted", Phase: "server", RowsOut: 7},
			{Op: "counter", Label: "write_stalls", Phase: "server", RowsOut: 0},
		},
	}
	compact := strings.Join(tr.CompactLines(), "\n")
	for _, want := range []string{"conns_accepted: 7", "write_stalls: 0"} {
		if !strings.Contains(compact, want) {
			t.Errorf("CompactLines missing %q in:\n%s", want, compact)
		}
	}
	tree := strings.Join(tr.TreeLines(), "\n")
	if !strings.Contains(tree, "conns_accepted: 7") {
		t.Errorf("TreeLines missing counter line in:\n%s", tree)
	}
	if !strings.Contains(tree, "server") {
		t.Errorf("TreeLines missing the server phase group in:\n%s", tree)
	}
}

package trace

import (
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerIsSafe: every method on the disabled (nil) tracer is a no-op —
// the contract that lets operators thread tracers unconditionally.
func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	if sp := tr.Span("scan", "x"); sp != nil {
		t.Error("nil tracer returned a span")
	}
	tr.Note("ignored")
	tr.SetQuery("q")
	tr.SetMode("m")
	tr.SetStrategy("s")
	tr.SetParallelism(4)
	tr.SetOutputs([]string{"a"})
	tr.SetStats("st")
	tr.AddRowsScanned(1)
	tr.AddRowsJoined(1)
	tr.AddRowsDropped(1)
	tr.AddRowsOut(1)
	tr.AddBytes(1)
	if tr.Finish() != nil {
		t.Error("nil tracer Finish returned a trace")
	}
}

// TestNilTracerCostsNothing: the disabled path must not allocate — this is
// the structural half of the overhead budget (the timing half is
// BenchmarkTracerOverhead16b at the repo root), and it is what lets every
// operator thread the tracer unconditionally instead of branching on an
// "observability enabled" flag.
func TestNilTracerCostsNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if sp := tr.Span("scan", "x"); sp != nil {
			t.Fatal("nil tracer returned a span")
		}
		tr.AddRowsScanned(1)
		tr.AddRowsJoined(1)
		tr.AddBytes(1)
		tr.Note("ignored")
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates: %.1f allocs per operator touch", allocs)
	}
}

// TestSpanRecordingAndCounters: spans appear in registration order with the
// caller's field values; counters accumulate.
func TestSpanRecordingAndCounters(t *testing.T) {
	tr := New("SELECT 1")
	tr.SetMode("single-table")
	tr.SetStrategy("spj")
	sp := tr.Span("scan", "t AS t")
	sp.Phase = "scan"
	sp.RowsIn, sp.RowsOut = 10, 4
	tr.AddRowsScanned(4)
	tr.AddRowsDropped(6)
	tr.Note("a note")
	snap := tr.Finish()
	if snap.Query != "SELECT 1" || snap.Mode != "single-table" || snap.Strategy != "spj" {
		t.Errorf("snapshot meta = %+v", snap)
	}
	if len(snap.Spans) != 2 || snap.Spans[0].Op != "scan" || snap.Spans[1].Op != "note" {
		t.Fatalf("spans = %+v", snap.Spans)
	}
	if snap.Counters.RowsScanned != 4 || snap.Counters.RowsDropped != 6 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if snap.WallNS <= 0 {
		t.Error("wall time not recorded")
	}
}

// TestConcurrentCountersAndSpans: counter bumps and span registration from
// many goroutines are safe (run under -race by verify.sh).
func TestConcurrentCountersAndSpans(t *testing.T) {
	tr := New("q")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.AddRowsScanned(1)
				tr.AddBytes(2)
			}
			tr.Span("scan", "x")
		}()
	}
	wg.Wait()
	snap := tr.Finish()
	if snap.Counters.RowsScanned != 1600 || snap.Counters.BytesOut != 3200 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if len(snap.Spans) != 16 {
		t.Errorf("spans = %d", len(snap.Spans))
	}
}

// TestCountsFingerprintExcludesRunVaryingFields: two traces identical in
// counts but different in times, degree, and morsels must fingerprint alike.
func TestCountsFingerprintExcludesRunVaryingFields(t *testing.T) {
	mk := func(par int, ns int64) *Trace {
		tr := New("q")
		tr.SetMode("resultdb")
		tr.SetStrategy("semijoin")
		sp := tr.Span("semi-join", "a ⋉ b")
		sp.Phase = "bottom-up"
		sp.RowsIn, sp.RowsOut = 100, 40
		sp.Par, sp.Morsels = par, par*3
		sp.BuildNS, sp.ProbeNS = ns, ns*2
		return tr.Finish()
	}
	a, b := mk(1, 1000), mk(8, 999999)
	if a.CountsFingerprint() != b.CountsFingerprint() {
		t.Errorf("fingerprints differ:\n%s\nvs\n%s", a.CountsFingerprint(), b.CountsFingerprint())
	}
	c := mk(1, 1000)
	c.Spans[0].RowsOut = 41
	if a.CountsFingerprint() == c.CountsFingerprint() {
		t.Error("fingerprint ignores cardinality change")
	}
}

// TestTreeLinesBracketsAreStrippable: every run-varying annotation lives in a
// trailing [...] bracket, so tooling can strip them with one regexp and the
// remainder is deterministic.
func TestTreeLinesBracketsAreStrippable(t *testing.T) {
	tr := New("q")
	tr.SetMode("resultdb")
	tr.SetStrategy("semijoin")
	tr.SetParallelism(4)
	sp := tr.Span("semi-join", "a ⋉ b")
	sp.Phase = "bottom-up"
	sp.RowsIn, sp.RowsBuild, sp.RowsOut = 100, 20, 40
	sp.Par, sp.Morsels, sp.BuildNS, sp.ProbeNS = 4, 7, 12345, 54321
	lines := tr.Finish().TreeLines()
	strip := regexp.MustCompile(`\s*\[[^\]]*\]`)
	joined := strip.ReplaceAllString(strings.Join(lines, "\n"), "")
	if strings.Contains(joined, "ms") || strings.Contains(joined, "par 4") || strings.Contains(joined, "morsels") {
		t.Errorf("run-varying annotation outside brackets:\n%s", joined)
	}
	if !strings.Contains(joined, "semi-join a ⋉ b  rows: 100 -> 40  (source 20 rows)") {
		t.Errorf("deterministic span line missing:\n%s", joined)
	}
}

// TestTraceJSONRoundTrip: the JSON form carries the full structure back.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := New("SELECT x")
	tr.SetMode("resultdb")
	tr.SetOutputs([]string{"a", "b"})
	sp := tr.Span("output", "a")
	sp.Phase = "output"
	sp.RowsIn, sp.RowsOut, sp.Bytes = 5, 3, 99
	tr.AddBytes(99)
	snap := tr.Finish()
	data, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Query != snap.Query || back.Mode != snap.Mode ||
		len(back.Spans) != 1 || back.Spans[0].Bytes != 99 ||
		back.Counters.BytesOut != 99 || len(back.Outputs) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
}

package snapshot

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/workload/hierarchy"
)

func TestRoundTripSchemaAndData(t *testing.T) {
	src := db.New()
	if _, err := src.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL, f DOUBLE, b BOOLEAN,
			FOREIGN KEY (id) REFERENCES u (uid));
		CREATE TABLE u (uid INTEGER PRIMARY KEY);
		INSERT INTO u VALUES (1), (2);
		INSERT INTO t VALUES (1, 'x', 1.5, TRUE), (2, 'y', NULL, FALSE);
		CREATE MATERIALIZED VIEW mv AS SELECT t.name FROM t AS t;
	`); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Catalog round trip.
	if strings.Join(got.Catalog().Names(), ",") != strings.Join(src.Catalog().Names(), ",") {
		t.Errorf("tables = %v", got.Catalog().Names())
	}
	def, err := got.Catalog().Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(def.PrimaryKey) != 1 || def.PrimaryKey[0] != "id" {
		t.Errorf("pk = %v", def.PrimaryKey)
	}
	if len(def.ForeignKeys) != 1 || def.ForeignKeys[0].RefTable != "u" {
		t.Errorf("fk = %+v", def.ForeignKeys)
	}
	if !def.Columns[1].NotNull {
		t.Error("NOT NULL lost")
	}
	mv, _ := got.Catalog().Lookup("mv")
	if !mv.IsView {
		t.Error("IsView flag lost")
	}

	// Data round trip including NULLs; the restored db answers queries.
	res, err := got.QuerySQL("SELECT t.name FROM t AS t WHERE t.f IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().NumRows() != 1 || res.First().Rows[0][0].Text() != "y" {
		t.Errorf("restored query = %+v", res.First().Rows)
	}
	// Dropping the view in the restored db requires the view statement.
	if _, err := got.Exec("DROP MATERIALIZED VIEW mv"); err != nil {
		t.Errorf("restored view not droppable as view: %v", err)
	}
}

func TestRoundTripWorkload(t *testing.T) {
	src := db.New()
	if err := hierarchy.Load(src, hierarchy.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// RESULTDB queries agree between original and restored databases.
	q := hierarchy.ResultDBElectronics
	a, err := src.QuerySQL(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.QuerySQL(q)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := fingerprint(a), fingerprint(b)
	if fa != fb {
		t.Error("restored database answers differently")
	}
}

func fingerprint(res *db.Result) string {
	var rows []string
	for _, set := range res.Sets {
		for _, r := range set.Rows {
			rows = append(rows, set.Name+":"+r.String())
		}
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

func TestLoadRejectsGarbage(t *testing.T) {
	for _, buf := range [][]byte{nil, {1, 2, 3}, []byte("not a snapshot")} {
		if _, err := Load(bytes.NewReader(buf)); err == nil {
			t.Error("garbage loaded successfully")
		}
	}
	// Truncation.
	src := db.New()
	if _, err := src.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY)"); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(src, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()-1])); err == nil {
		t.Error("truncated snapshot loaded successfully")
	}
	if _, err := Load(bytes.NewReader(append(buf.Bytes(), 0))); err == nil {
		t.Error("trailing bytes accepted")
	}
}

package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/types"
	"resultdb/internal/wire"
)

// smallDB builds a one-table database with one row.
func smallDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
		INSERT INTO t VALUES (1, 'x');
	`); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSaveLoadLSN(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveLSN(smallDB(t), 1234, &buf); err != nil {
		t.Fatal(err)
	}
	got, lsn, err := LoadLSN(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1234 {
		t.Fatalf("lsn = %d, want 1234", lsn)
	}
	res, err := got.QuerySQL("SELECT t.name FROM t AS t")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().NumRows() != 1 {
		t.Fatalf("restored rows = %d", res.First().NumRows())
	}
	// Plain Save carries LSN 0.
	buf.Reset()
	if err := Save(smallDB(t), &buf); err != nil {
		t.Fatal(err)
	}
	if _, lsn, err = LoadLSN(bytes.NewReader(buf.Bytes())); err != nil || lsn != 0 {
		t.Fatalf("plain Save: lsn = %d, err = %v", lsn, err)
	}
}

func TestChecksumRejectionTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveLSN(smallDB(t), 7, &buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	// Flip one bit past the magic (body or trailer): typed checksum error,
	// and never a decoded database. (A flip inside the magic itself is
	// rejected earlier as ErrBadMagic.)
	for _, off := range []int{8, len(clean) / 2, len(clean) - 1} {
		data := append([]byte(nil), clean...)
		data[off] ^= 0x10
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrChecksum", off, err)
		}
	}
	// Truncation is also caught by the checksum before body decode.
	if _, err := Load(bytes.NewReader(clean[:len(clean)-3])); !errors.Is(err, ErrChecksum) {
		t.Fatalf("truncated: err should be ErrChecksum, got %v", err)
	}
}

func TestFutureVersionRejectedTyped(t *testing.T) {
	e := wire.NewEncoder()
	e.Uvarint(magic)
	e.Uvarint(versionCurrent + 1)
	e.Uvarint(0)
	e.Uvarint(0)
	body := e.Bytes()
	data := binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("err = %v, want ErrFutureVersion", err)
	}
}

func TestBadMagicTyped(t *testing.T) {
	e := wire.NewEncoder()
	e.Uvarint(0xBADC0DE)
	if _, err := Load(bytes.NewReader(e.Bytes())); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

// TestLegacyV1Load locks the migration behaviour: a version-1 file (shell
// \save output from before durability — no LSN field, no CRC trailer) still
// loads, mapping to LSN 0.
func TestLegacyV1Load(t *testing.T) {
	e := wire.NewEncoder()
	e.Uvarint(magic)
	e.Uvarint(versionLegacy)
	e.Uvarint(1) // one table
	e.Str("t")
	e.Uvarint(0) // flags
	e.Uvarint(2) // columns
	e.Str("id")
	e.Uvarint(uint64(types.KindInt))
	e.Uvarint(1) // NOT NULL
	e.Str("name")
	e.Uvarint(uint64(types.KindText))
	e.Uvarint(0)
	e.Uvarint(1) // pk
	e.Str("id")
	e.Uvarint(0) // fks
	e.Uvarint(2) // rows
	e.Value(types.NewInt(1))
	e.Value(types.NewText("x"))
	e.Value(types.NewInt(2))
	e.Value(types.Null())

	got, lsn, err := LoadLSN(bytes.NewReader(e.Bytes()))
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if lsn != 0 {
		t.Fatalf("legacy lsn = %d, want 0", lsn)
	}
	def, err := got.Catalog().Lookup("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(def.PrimaryKey) != 1 || !def.Columns[0].NotNull {
		t.Fatalf("legacy def = %+v", def)
	}
	res, err := got.QuerySQL("SELECT t.name FROM t AS t WHERE t.id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.First().NumRows() != 1 || res.First().Rows[0][0].Text() != "x" {
		t.Fatalf("legacy rows = %+v", res.First().Rows)
	}
	// Re-saving a legacy database produces a current-format file.
	var buf bytes.Buffer
	if err := Save(got, &buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLSN(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("re-saved legacy db: %v", err)
	}
}

// TestHostileCounts plants huge counts behind valid headers and checks they
// are rejected before allocation (typed error, bounded memory).
func TestHostileCounts(t *testing.T) {
	hostile := func(build func(e *wire.Encoder)) []byte {
		e := wire.NewEncoder()
		e.Uvarint(magic)
		e.Uvarint(versionCurrent)
		e.Uvarint(0) // lsn
		build(e)
		body := e.Bytes()
		return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	}
	cases := map[string][]byte{
		"tables": hostile(func(e *wire.Encoder) { e.Uvarint(1 << 40) }),
		"columns": hostile(func(e *wire.Encoder) {
			e.Uvarint(1)
			e.Str("t")
			e.Uvarint(0)
			e.Uvarint(1 << 40)
		}),
		"rows": hostile(func(e *wire.Encoder) {
			e.Uvarint(1)
			e.Str("t")
			e.Uvarint(0)
			e.Uvarint(1)
			e.Str("id")
			e.Uvarint(uint64(types.KindInt))
			e.Uvarint(0)
			e.Uvarint(0) // pk
			e.Uvarint(0) // fk
			e.Uvarint(1 << 40)
		}),
		"kind": hostile(func(e *wire.Encoder) {
			e.Uvarint(1)
			e.Str("t")
			e.Uvarint(0)
			e.Uvarint(1)
			e.Str("id")
			e.Uvarint(99) // invalid kind
			e.Uvarint(0)
		}),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

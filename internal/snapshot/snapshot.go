// Package snapshot saves and restores a whole database — catalog and rows —
// as one binary blob, using the wire value encoding. It backs the shell's
// \save and \open commands and is the checkpoint format of the durability
// subsystem (internal/durable): a checkpoint is a snapshot stamped with the
// last WAL LSN it covers.
//
// Format v2 (current):
//
//	| magic | version=2 | last-applied LSN | body (tables) | CRC32 (4B LE) |
//
// all in wire primitives except the fixed CRC trailer, which covers every
// preceding byte. Format v1 (legacy, shell \save files from before
// durability) lacks the LSN and the trailer; Load still accepts it, mapping
// it to LSN 0. Corrupt and future-format files are rejected with typed
// errors — a durability substrate must never decode damage into a database.
//
// Load is hardened against hostile input: every count is bounded by the
// bytes that could possibly back it before allocation, so a truncated or
// bit-flipped file costs a typed error, not memory.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"resultdb/internal/catalog"
	"resultdb/internal/db"
	"resultdb/internal/storage"
	"resultdb/internal/types"
	"resultdb/internal/wire"
)

const (
	magic = 0x52444253 // "RDBS"
	// versionLegacy is the pre-durability format: no LSN, no checksum.
	versionLegacy = 1
	// versionCurrent adds the last-applied LSN to the header and a CRC32
	// trailer over the whole file.
	versionCurrent = 2

	crcTrailerLen = 4
)

// Typed load failures, distinguishable with errors.Is.
var (
	// ErrBadMagic means the bytes are not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrFutureVersion means the snapshot was written by a newer format
	// this build cannot decode.
	ErrFutureVersion = errors.New("snapshot: unsupported future format version")
	// ErrChecksum means the CRC32 trailer does not match the contents.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrCorrupt means the body is structurally damaged (truncated counts,
	// invalid kinds, trailing bytes, ...).
	ErrCorrupt = errors.New("snapshot: corrupt")
)

// Source is the read surface Save encodes: a sorted table listing plus
// per-name lookup. Both *db.Database (newest state) and *db.Snapshot (one
// pinned MVCC version set) implement it, so checkpoints can serialize a
// frozen snapshot while writers keep committing.
type Source interface {
	TableNames() []string
	Table(name string) (*storage.Table, error)
}

// Save writes every table of src (base tables and materialized views) to w
// in the current format, with a last-applied LSN of 0 (no WAL association).
func Save(src Source, w io.Writer) error {
	return SaveLSN(src, 0, w)
}

// SaveLSN writes a snapshot stamped with the WAL LSN it covers: replaying
// records with LSN > lastLSN on top of the loaded database reconstructs the
// logged state exactly.
func SaveLSN(src Source, lastLSN uint64, w io.Writer) error {
	e := wire.NewEncoder()
	e.Uvarint(magic)
	e.Uvarint(versionCurrent)
	e.Uvarint(lastLSN)
	names := src.TableNames()
	e.Uvarint(uint64(len(names)))
	for _, name := range names {
		t, err := src.Table(name)
		if err != nil {
			return err
		}
		encodeDef(e, t.Def)
		e.Uvarint(uint64(len(t.Rows)))
		for _, row := range t.Rows {
			for _, v := range row {
				e.Value(v)
			}
		}
	}
	buf := e.Bytes()
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

func encodeDef(e *wire.Encoder, def *catalog.TableDef) {
	e.Str(def.Name)
	flags := uint64(0)
	if def.IsView {
		flags = 1
	}
	e.Uvarint(flags)
	e.Uvarint(uint64(len(def.Columns)))
	for _, c := range def.Columns {
		e.Str(c.Name)
		e.Uvarint(uint64(c.Type))
		if c.NotNull {
			e.Uvarint(1)
		} else {
			e.Uvarint(0)
		}
	}
	e.Uvarint(uint64(len(def.PrimaryKey)))
	for _, k := range def.PrimaryKey {
		e.Str(k)
	}
	e.Uvarint(uint64(len(def.ForeignKeys)))
	for _, fk := range def.ForeignKeys {
		e.Str(fk.RefTable)
		e.Uvarint(uint64(len(fk.Columns)))
		for i := range fk.Columns {
			e.Str(fk.Columns[i])
			e.Str(fk.RefColumns[i])
		}
	}
}

// Load reads a snapshot produced by Save (current or legacy format) into a
// fresh database.
func Load(r io.Reader) (*db.Database, error) {
	d, _, err := LoadLSN(r)
	return d, err
}

// LoadLSN is Load plus the snapshot's last-applied WAL LSN (0 for legacy v1
// files and plain Save output).
func LoadLSN(r io.Reader) (*db.Database, uint64, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	dec := wire.NewDecoder(buf)
	m, err := dec.Uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if m != magic {
		return nil, 0, fmt.Errorf("%w: %#x", ErrBadMagic, m)
	}
	v, err := dec.Uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: version: %v", ErrCorrupt, err)
	}
	lastLSN := uint64(0)
	switch {
	case v == versionLegacy:
		// Pre-durability file: no LSN, no checksum; decode the body as-is.
	case v == versionCurrent:
		// Verify the trailer before trusting a single body byte.
		if len(buf) < crcTrailerLen {
			return nil, 0, fmt.Errorf("%w: file too short for checksum", ErrCorrupt)
		}
		body, trailer := buf[:len(buf)-crcTrailerLen], buf[len(buf)-crcTrailerLen:]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
			return nil, 0, ErrChecksum
		}
		dec = wire.NewDecoder(body)
		// Re-skip the already-validated header.
		dec.Uvarint()
		dec.Uvarint()
		lastLSN, err = dec.Uvarint()
		if err != nil {
			return nil, 0, fmt.Errorf("%w: last LSN: %v", ErrCorrupt, err)
		}
	case v > versionCurrent:
		return nil, 0, fmt.Errorf("%w: %d (this build reads up to %d)", ErrFutureVersion, v, versionCurrent)
	default:
		return nil, 0, fmt.Errorf("%w: version %d", ErrCorrupt, v)
	}
	d, err := decodeBody(dec)
	if err != nil {
		return nil, 0, err
	}
	return d, lastLSN, nil
}

// decodeBody decodes the table section. Every count is checked against the
// bytes remaining before allocation: a table costs ≥ 1 byte, a column ≥ 3, a
// row ≥ width bytes — so a hostile count can never out-allocate its input.
func decodeBody(dec *wire.Decoder) (*db.Database, error) {
	nTables, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: table count: %v", ErrCorrupt, err)
	}
	if nTables > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("%w: table count %d exceeds remaining %d bytes", ErrCorrupt, nTables, dec.Remaining())
	}
	d := db.New()
	for i := uint64(0); i < nTables; i++ {
		def, err := decodeDef(dec)
		if err != nil {
			return nil, err
		}
		t, err := d.CreateTable(def)
		if err != nil {
			return nil, fmt.Errorf("%w: table %d: %v", ErrCorrupt, i, err)
		}
		nRows, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: table %s row count: %v", ErrCorrupt, def.Name, err)
		}
		width := len(def.Columns)
		// A row encodes to at least one byte per value.
		if width > 0 && nRows > uint64(dec.Remaining())/uint64(width) {
			return nil, fmt.Errorf("%w: table %s row count %d exceeds remaining %d bytes", ErrCorrupt, def.Name, nRows, dec.Remaining())
		}
		t.Rows = make([]types.Row, 0, nRows)
		for r := uint64(0); r < nRows; r++ {
			row := make(types.Row, width)
			for c := 0; c < width; c++ {
				row[c], err = dec.Value()
				if err != nil {
					return nil, fmt.Errorf("%w: table %s row %d: %v", ErrCorrupt, def.Name, r, err)
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	if dec.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, dec.Remaining())
	}
	return d, nil
}

func decodeDef(dec *wire.Decoder) (*catalog.TableDef, error) {
	name, err := dec.Str()
	if err != nil {
		return nil, fmt.Errorf("%w: table name: %v", ErrCorrupt, err)
	}
	flags, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: table %s flags: %v", ErrCorrupt, name, err)
	}
	if flags > 1 {
		return nil, fmt.Errorf("%w: table %s unknown flags %#x", ErrCorrupt, name, flags)
	}
	nCols, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: table %s column count: %v", ErrCorrupt, name, err)
	}
	// A column encodes to at least 3 bytes (empty name + kind + notNull).
	if nCols > uint64(dec.Remaining())/3 {
		return nil, fmt.Errorf("%w: table %s column count %d exceeds remaining %d bytes", ErrCorrupt, name, nCols, dec.Remaining())
	}
	cols := make([]catalog.Column, nCols)
	for i := range cols {
		cname, err := dec.Str()
		if err != nil {
			return nil, fmt.Errorf("%w: table %s column %d name: %v", ErrCorrupt, name, i, err)
		}
		kind, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: column %s kind: %v", ErrCorrupt, cname, err)
		}
		if kind > uint64(types.KindBool) {
			return nil, fmt.Errorf("%w: column %s invalid kind %d", ErrCorrupt, cname, kind)
		}
		notNull, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: column %s notnull: %v", ErrCorrupt, cname, err)
		}
		if notNull > 1 {
			return nil, fmt.Errorf("%w: column %s invalid notnull %d", ErrCorrupt, cname, notNull)
		}
		cols[i] = catalog.Column{Name: cname, Type: types.Kind(kind), NotNull: notNull == 1}
	}
	def, err := catalog.NewTableDef(name, cols)
	if err != nil {
		return nil, fmt.Errorf("%w: table %s: %v", ErrCorrupt, name, err)
	}
	def.IsView = flags&1 != 0
	nPK, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: table %s pk count: %v", ErrCorrupt, name, err)
	}
	if nPK > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("%w: table %s pk count %d exceeds remaining %d bytes", ErrCorrupt, name, nPK, dec.Remaining())
	}
	for i := uint64(0); i < nPK; i++ {
		k, err := dec.Str()
		if err != nil {
			return nil, fmt.Errorf("%w: table %s pk %d: %v", ErrCorrupt, name, i, err)
		}
		def.PrimaryKey = append(def.PrimaryKey, k)
	}
	nFK, err := dec.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("%w: table %s fk count: %v", ErrCorrupt, name, err)
	}
	// A foreign key encodes to at least 2 bytes (empty ref + pair count).
	if nFK > uint64(dec.Remaining())/2 {
		return nil, fmt.Errorf("%w: table %s fk count %d exceeds remaining %d bytes", ErrCorrupt, name, nFK, dec.Remaining())
	}
	for i := uint64(0); i < nFK; i++ {
		ref, err := dec.Str()
		if err != nil {
			return nil, fmt.Errorf("%w: table %s fk %d ref: %v", ErrCorrupt, name, i, err)
		}
		nPairs, err := dec.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("%w: fk %s pair count: %v", ErrCorrupt, ref, err)
		}
		// A column pair encodes to at least 2 bytes (two empty names).
		if nPairs > uint64(dec.Remaining())/2 {
			return nil, fmt.Errorf("%w: fk %s pair count %d exceeds remaining %d bytes", ErrCorrupt, ref, nPairs, dec.Remaining())
		}
		fk := catalog.ForeignKey{RefTable: ref}
		for p := uint64(0); p < nPairs; p++ {
			c, err := dec.Str()
			if err != nil {
				return nil, fmt.Errorf("%w: fk %s pair %d: %v", ErrCorrupt, ref, p, err)
			}
			rc, err := dec.Str()
			if err != nil {
				return nil, fmt.Errorf("%w: fk %s pair %d ref: %v", ErrCorrupt, ref, p, err)
			}
			fk.Columns = append(fk.Columns, c)
			fk.RefColumns = append(fk.RefColumns, rc)
		}
		def.ForeignKeys = append(def.ForeignKeys, fk)
	}
	return def, nil
}

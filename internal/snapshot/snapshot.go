// Package snapshot saves and restores a whole database — catalog and rows —
// as one binary blob, using the wire value encoding. It backs the shell's
// \save and \open commands, so a generated workload (or any session state)
// can be persisted once and reopened instantly instead of being regenerated.
package snapshot

import (
	"fmt"
	"io"

	"resultdb/internal/catalog"
	"resultdb/internal/db"
	"resultdb/internal/types"
	"resultdb/internal/wire"
)

const (
	magic   = 0x52444253 // "RDBS"
	version = 1
)

// Save writes every table of d (base tables and materialized views) to w.
func Save(d *db.Database, w io.Writer) error {
	e := wire.NewEncoder()
	e.Uvarint(magic)
	e.Uvarint(version)
	names := d.Catalog().Names()
	e.Uvarint(uint64(len(names)))
	for _, name := range names {
		t, err := d.Table(name)
		if err != nil {
			return err
		}
		encodeDef(e, t.Def)
		e.Uvarint(uint64(len(t.Rows)))
		for _, row := range t.Rows {
			for _, v := range row {
				e.Value(v)
			}
		}
	}
	_, err := w.Write(e.Bytes())
	return err
}

func encodeDef(e *wire.Encoder, def *catalog.TableDef) {
	e.Str(def.Name)
	flags := uint64(0)
	if def.IsView {
		flags = 1
	}
	e.Uvarint(flags)
	e.Uvarint(uint64(len(def.Columns)))
	for _, c := range def.Columns {
		e.Str(c.Name)
		e.Uvarint(uint64(c.Type))
		if c.NotNull {
			e.Uvarint(1)
		} else {
			e.Uvarint(0)
		}
	}
	e.Uvarint(uint64(len(def.PrimaryKey)))
	for _, k := range def.PrimaryKey {
		e.Str(k)
	}
	e.Uvarint(uint64(len(def.ForeignKeys)))
	for _, fk := range def.ForeignKeys {
		e.Str(fk.RefTable)
		e.Uvarint(uint64(len(fk.Columns)))
		for i := range fk.Columns {
			e.Str(fk.Columns[i])
			e.Str(fk.RefColumns[i])
		}
	}
}

// Load reads a snapshot produced by Save into a fresh database.
func Load(r io.Reader) (*db.Database, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	dec := wire.NewDecoder(buf)
	m, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("snapshot: bad magic %#x", m)
	}
	v, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("snapshot: unsupported version %d", v)
	}
	nTables, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	d := db.New()
	for i := uint64(0); i < nTables; i++ {
		def, err := decodeDef(dec)
		if err != nil {
			return nil, err
		}
		t, err := d.CreateTable(def)
		if err != nil {
			return nil, err
		}
		nRows, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		width := len(def.Columns)
		t.Rows = make([]types.Row, 0, nRows)
		for r := uint64(0); r < nRows; r++ {
			row := make(types.Row, width)
			for c := 0; c < width; c++ {
				row[c], err = dec.Value()
				if err != nil {
					return nil, fmt.Errorf("snapshot: table %s row %d: %w", def.Name, r, err)
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	if dec.Remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes", dec.Remaining())
	}
	return d, nil
}

func decodeDef(dec *wire.Decoder) (*catalog.TableDef, error) {
	name, err := dec.Str()
	if err != nil {
		return nil, err
	}
	flags, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	nCols, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	cols := make([]catalog.Column, nCols)
	for i := range cols {
		cname, err := dec.Str()
		if err != nil {
			return nil, err
		}
		kind, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		notNull, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		cols[i] = catalog.Column{Name: cname, Type: types.Kind(kind), NotNull: notNull == 1}
	}
	def, err := catalog.NewTableDef(name, cols)
	if err != nil {
		return nil, err
	}
	def.IsView = flags&1 != 0
	nPK, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nPK; i++ {
		k, err := dec.Str()
		if err != nil {
			return nil, err
		}
		def.PrimaryKey = append(def.PrimaryKey, k)
	}
	nFK, err := dec.Uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nFK; i++ {
		ref, err := dec.Str()
		if err != nil {
			return nil, err
		}
		nPairs, err := dec.Uvarint()
		if err != nil {
			return nil, err
		}
		fk := catalog.ForeignKey{RefTable: ref}
		for p := uint64(0); p < nPairs; p++ {
			c, err := dec.Str()
			if err != nil {
				return nil, err
			}
			rc, err := dec.Str()
			if err != nil {
				return nil, err
			}
			fk.Columns = append(fk.Columns, c)
			fk.RefColumns = append(fk.RefColumns, rc)
		}
		def.ForeignKeys = append(def.ForeignKeys, fk)
	}
	return def, nil
}

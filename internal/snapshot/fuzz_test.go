package snapshot

import (
	"bytes"
	"testing"

	"resultdb/internal/db"
)

// loadSeedDB builds the corpus-seed database outside the *testing.T helpers
// available to fuzz targets.
func loadSeedDB() (*db.Database, error) {
	d := db.New()
	_, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
		INSERT INTO t VALUES (1, 'x');
	`)
	return d, err
}

// FuzzSnapshotLoad feeds arbitrary bytes to Load: whatever the input, the
// result is a typed error or a database that round-trips — never a panic and
// never an allocation larger than the input justifies.
func FuzzSnapshotLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a snapshot"))
	// A valid current-format snapshot as a seed.
	{
		d, err := loadSeedDB()
		if err == nil {
			var buf bytes.Buffer
			if SaveLSN(d, 3, &buf) == nil {
				f.Add(buf.Bytes())
				f.Add(buf.Bytes()[:buf.Len()/2])
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, lsn, err := LoadLSN(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded snapshot must save and reload identically.
		var buf bytes.Buffer
		if err := SaveLSN(d, lsn, &buf); err != nil {
			t.Fatalf("re-save of loaded snapshot: %v", err)
		}
		if _, lsn2, err := LoadLSN(bytes.NewReader(buf.Bytes())); err != nil || lsn2 != lsn {
			t.Fatalf("re-load: lsn %d→%d, err %v", lsn, lsn2, err)
		}
	})
}

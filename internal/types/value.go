// Package types defines the value model shared by every layer of the
// database: typed scalar values, NULL semantics, comparison, hashing, and the
// result-set size accounting used by the paper's evaluation (Section 6.1).
package types

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

const (
	// KindNull is the SQL NULL marker. NULL compares unknown to everything
	// and is only equal to NULL under grouping semantics, never under
	// predicate semantics.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 floating point number.
	KindFloat
	// KindText is a variable-length UTF-8 string.
	KindText
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL scalar. The zero Value is NULL.
//
// Value is a small tagged union kept as a value type (no pointers except the
// string header) so rows can be stored contiguously without per-cell
// allocation.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a DOUBLE value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{kind: KindText, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the runtime type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if v is not an INTEGER.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("types: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload, converting from INTEGER if necessary.
// It panics if v is neither numeric kind.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic("types: Float() on " + v.kind.String())
}

// Text returns the string payload. It panics if v is not TEXT.
func (v Value) Text() string {
	if v.kind != KindText {
		panic("types: Text() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the boolean payload. It panics if v is not BOOLEAN.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("types: Bool() on " + v.kind.String())
	}
	return v.b
}

// String renders v the way a SQL shell would print it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// numeric reports whether v is INT or FLOAT.
func (v Value) numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values. NULL sorts before everything; numeric kinds
// compare by numeric value (so 1 == 1.0); distinct non-numeric kinds compare
// by kind tag. The result is -1, 0, or +1.
//
// Compare defines the grouping/ordering total order; SQL three-valued
// predicate comparison with NULL is handled in the expression evaluator.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.numeric() && b.numeric() {
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindText:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// Equal reports whether a and b are identical under grouping semantics
// (NULL equals NULL, 1 equals 1.0).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FNV-1a parameters shared by the row hasher and the columnar hasher in
// internal/colstore. Hashing is defined as a byte-stream FNV-1a over the
// encoding produced by HashInto; HashFNV computes the identical stream
// without going through a heap-allocated hash.Hash64.
const (
	// FNVOffset64 is the 64-bit FNV-1a offset basis (initial hash state).
	FNVOffset64 uint64 = 14695981039346656037
	// FNVPrime64 is the 64-bit FNV prime.
	FNVPrime64 uint64 = 1099511628211
)

// FNVByte advances an FNV-1a state by one byte.
func FNVByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * FNVPrime64 }

// FNVUint64LE advances an FNV-1a state by the 8 little-endian bytes of v.
func FNVUint64LE(h, v uint64) uint64 {
	h = (h ^ (v & 0xff)) * FNVPrime64
	h = (h ^ ((v >> 8) & 0xff)) * FNVPrime64
	h = (h ^ ((v >> 16) & 0xff)) * FNVPrime64
	h = (h ^ ((v >> 24) & 0xff)) * FNVPrime64
	h = (h ^ ((v >> 32) & 0xff)) * FNVPrime64
	h = (h ^ ((v >> 40) & 0xff)) * FNVPrime64
	h = (h ^ ((v >> 48) & 0xff)) * FNVPrime64
	h = (h ^ (v >> 56)) * FNVPrime64
	return h
}

// FNVString advances an FNV-1a state by the bytes of s (no terminator).
func FNVString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * FNVPrime64
	}
	return h
}

// HashFNV advances the FNV-1a state h by v's hash encoding. The byte stream
// is exactly the one HashInto writes, so
//
//	v.HashFNV(FNVOffset64) == fnv.New64a() → v.HashInto(h) → h.Sum64()
//
// but with zero allocations. Chaining HashFNV over several values hashes the
// composite key, identically to Row.HashKey.
func (v Value) HashFNV(h uint64) uint64 {
	switch v.kind {
	case KindNull:
		return FNVByte(h, 0)
	case KindInt, KindFloat:
		h = FNVByte(h, 1)
		return FNVUint64LE(h, math.Float64bits(v.Float()))
	case KindText:
		h = FNVByte(h, 2)
		h = FNVString(h, v.s)
		return FNVByte(h, 0xff)
	case KindBool:
		h = FNVByte(h, 3)
		if v.b {
			return FNVByte(h, 1)
		}
		return FNVByte(h, 0)
	default:
		return h
	}
}

// Hash returns a hash consistent with Equal: Equal values hash identically.
// Allocation-free (inlined FNV-1a; see HashFNV).
func (v Value) Hash() uint64 {
	return v.HashFNV(FNVOffset64)
}

// hashWriter is the subset of hash.Hash64 we need; it lets HashInto feed a
// shared hasher when hashing composite keys.
type hashWriter interface {
	Write(p []byte) (int, error)
}

// HashInto feeds v into h in a form consistent with Equal.
func (v Value) HashInto(h hashWriter) {
	var buf [9]byte
	switch v.kind {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt, KindFloat:
		// Numeric kinds must hash identically when Equal; hash the float
		// bit pattern of the numeric value. Integers beyond 2^53 lose
		// precision in Float(), so hash exact integers by value when the
		// round-trip is lossless, else by float bits — both sides of any
		// Equal pair take the same branch because Equal compares floats.
		buf[0] = 1
		f := v.Float()
		bits := math.Float64bits(f)
		putUint64(buf[1:], bits)
		h.Write(buf[:9])
	case KindText:
		buf[0] = 2
		h.Write(buf[:1])
		h.Write([]byte(v.s))
		buf[0] = 0xff // terminator so "a","b" != "ab",""
		h.Write(buf[:1])
	case KindBool:
		buf[0] = 3
		if v.b {
			buf[1] = 1
		}
		h.Write(buf[:2])
	}
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// WireSize returns the number of bytes v contributes to a result set under
// the paper's sizing rule (Section 6.1): numeric attributes count their
// datatype width, character attributes count the actual string length.
func (v Value) WireSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindInt:
		return 8
	case KindFloat:
		return 8
	case KindText:
		return len(v.s)
	case KindBool:
		return 1
	default:
		return 0
	}
}

// Coerce attempts to convert v to the requested kind, used when inserting
// literals into typed columns. NULL coerces to anything.
func Coerce(v Value, to Kind) (Value, error) {
	if v.kind == to || v.kind == KindNull {
		return v, nil
	}
	switch to {
	case KindFloat:
		if v.kind == KindInt {
			return NewFloat(float64(v.i)), nil
		}
	case KindInt:
		if v.kind == KindFloat && v.f == math.Trunc(v.f) {
			return NewInt(int64(v.f)), nil
		}
	case KindText:
		return NewText(v.String()), nil
	}
	return Value{}, fmt.Errorf("types: cannot coerce %s value %q to %s", v.kind, v.String(), to)
}

package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowCloneIndependence(t *testing.T) {
	r := Row{NewInt(1), NewText("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].Int() != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestRowEqual(t *testing.T) {
	a := Row{NewInt(1), NewText("x")}
	b := Row{NewInt(1), NewText("x")}
	if !a.Equal(b) {
		t.Error("identical rows not equal")
	}
	if a.Equal(Row{NewInt(1)}) {
		t.Error("different arity equal")
	}
	if a.Equal(Row{NewInt(2), NewText("x")}) {
		t.Error("different values equal")
	}
	// NULL equals NULL under grouping semantics.
	if !(Row{Null()}).Equal(Row{Null()}) {
		t.Error("NULL != NULL under grouping semantics")
	}
	// Int/float cross-kind equality carries into rows.
	if !(Row{NewInt(2)}).Equal(Row{NewFloat(2)}) {
		t.Error("2 != 2.0 in rows")
	}
}

func TestRowProjectAndHashKey(t *testing.T) {
	r := Row{NewInt(1), NewText("a"), NewBool(true)}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || !p[0].Bool() || p[0].Kind() != KindBool || p[1].Int() != 1 {
		t.Errorf("Project = %v", p)
	}
	if r.HashKey([]int{0, 1}) != (Row{NewInt(1), NewText("a")}).Hash() {
		t.Error("HashKey must equal hash of the projection")
	}
}

func TestRowString(t *testing.T) {
	r := Row{NewInt(1), Null(), NewText("hi")}
	if got := r.String(); got != "1 | NULL | hi" {
		t.Errorf("String = %q", got)
	}
}

func TestCompareRows(t *testing.T) {
	cases := []struct {
		a, b Row
		want int
	}{
		{Row{NewInt(1)}, Row{NewInt(2)}, -1},
		{Row{NewInt(1), NewText("a")}, Row{NewInt(1), NewText("b")}, -1},
		{Row{NewInt(1)}, Row{NewInt(1), NewInt(0)}, -1}, // shorter first
		{Row{NewInt(1)}, Row{NewInt(1)}, 0},
	}
	for _, c := range cases {
		if got := CompareRows(c.a, c.b); got != c.want {
			t.Errorf("CompareRows(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := CompareRows(c.b, c.a); got != -c.want {
			t.Errorf("CompareRows not antisymmetric on (%v, %v)", c.a, c.b)
		}
	}
}

func TestRowSet(t *testing.T) {
	s := NewRowSet()
	if !s.Add(Row{NewInt(1), NewText("a")}) {
		t.Error("first Add should report new")
	}
	if s.Add(Row{NewInt(1), NewText("a")}) {
		t.Error("duplicate Add should report existing")
	}
	if !s.Add(Row{NewInt(1), NewText("b")}) {
		t.Error("distinct row rejected")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if !s.Contains(Row{NewInt(1), NewText("a")}) {
		t.Error("Contains misses present row")
	}
	if s.Contains(Row{NewInt(2), NewText("a")}) {
		t.Error("Contains finds absent row")
	}
}

// TestRowSetRandomized cross-checks RowSet against a map-based oracle.
func TestRowSetRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewRowSet()
	oracle := map[string]bool{}
	for i := 0; i < 3000; i++ {
		r := Row{randomValue(rng), randomValue(rng)}
		key := r.String() + "§" + r[0].Kind().String() + r[1].Kind().String()
		// Numeric cross-kind equality makes the string oracle miss 1 vs 1.0;
		// normalize numerics to float rendering.
		key = normKey(r)
		added := s.Add(r)
		if added == oracle[key] {
			t.Fatalf("iteration %d: Add(%v) = %v, oracle new=%v", i, r, added, !oracle[key])
		}
		oracle[key] = true
	}
	if s.Len() != len(oracle) {
		t.Fatalf("Len = %d, oracle %d", s.Len(), len(oracle))
	}
}

func normKey(r Row) string {
	out := ""
	for _, v := range r {
		switch v.Kind() {
		case KindInt, KindFloat:
			out += "num:" + NewFloat(v.Float()).String()
		default:
			out += v.Kind().String() + ":" + v.String()
		}
		out += "|"
	}
	return out
}

func TestKeySetNullSemantics(t *testing.T) {
	s := NewKeySet()
	s.AddKey(Row{Null(), NewInt(1)}, []int{0}) // NULL key skipped on build
	s.AddKey(Row{NewInt(5)}, []int{0})
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1 (NULL keys skipped)", s.Len())
	}
	if s.ContainsKey(Row{Null()}, []int{0}) {
		t.Error("NULL probe must never match (SQL join semantics)")
	}
	if !s.ContainsKey(Row{NewInt(5)}, []int{0}) {
		t.Error("present key missed")
	}
	if s.ContainsKey(Row{NewInt(6)}, []int{0}) {
		t.Error("absent key found")
	}
}

func TestKeySetCompositeKeys(t *testing.T) {
	s := NewKeySet()
	s.AddKey(Row{NewInt(1), NewText("a"), NewInt(9)}, []int{0, 1})
	if !s.ContainsKey(Row{NewText("a"), NewInt(1)}, []int{1, 0}) {
		t.Error("composite probe with reordered columns missed")
	}
	if s.ContainsKey(Row{NewText("b"), NewInt(1)}, []int{1, 0}) {
		t.Error("wrong composite matched")
	}
	// Duplicate keys collapse.
	s.AddKey(Row{NewInt(1), NewText("a")}, []int{0, 1})
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestRowWireSize(t *testing.T) {
	r := Row{NewInt(1), NewText("abc"), Null()}
	if got := r.WireSize(); got != 8+3+1 {
		t.Errorf("WireSize = %d, want 12", got)
	}
}

// TestQuickRowHashEquality: rows built from equal int slices are Equal and
// hash identically; permuted rows of distinct values are not Equal.
func TestQuickRowHashEquality(t *testing.T) {
	same := func(vals []int64) bool {
		a := make(Row, len(vals))
		b := make(Row, len(vals))
		for i, v := range vals {
			a[i] = NewInt(v)
			b[i] = NewInt(v)
		}
		return a.Equal(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(same, nil); err != nil {
		t.Error(err)
	}
	appendBreaks := func(vals []int64, extra int64) bool {
		a := make(Row, len(vals))
		for i, v := range vals {
			a[i] = NewInt(v)
		}
		b := append(a.Clone(), NewInt(extra))
		return !a.Equal(b)
	}
	if err := quick.Check(appendBreaks, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickProjectWireSize: projecting a row never increases its wire size
// when projecting a subset of columns.
func TestQuickProjectWireSize(t *testing.T) {
	f := func(ints []int64, take uint8) bool {
		r := make(Row, len(ints))
		for i, v := range ints {
			r[i] = NewInt(v)
		}
		n := int(take)
		if n > len(r) {
			n = len(r)
		}
		cols := make([]int, n)
		for i := range cols {
			cols[i] = i
		}
		return r.Project(cols).WireSize() <= r.WireSize()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package types

import (
	"strings"
)

// Row is one tuple: a slice of values, positionally matched to a schema.
type Row []Value

// Clone returns a deep-enough copy of r (values are immutable, so a shallow
// slice copy suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Equal reports whether two rows have identical values under grouping
// semantics.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !Equal(r[i], o[i]) {
			return false
		}
	}
	return true
}

// Hash returns a hash of the whole row consistent with Equal.
// Allocation-free: chains the inlined FNV-1a hasher over all cells.
func (r Row) Hash() uint64 {
	h := FNVOffset64
	for i := range r {
		h = r[i].HashFNV(h)
	}
	return h
}

// HashKey returns a hash of the projection of r onto cols.
// Allocation-free: chains the inlined FNV-1a hasher over the key cells.
func (r Row) HashKey(cols []int) uint64 {
	h := FNVOffset64
	for _, c := range cols {
		h = r[c].HashFNV(h)
	}
	return h
}

// MakeRows allocates n rows of the given width backed by one contiguous
// value block (one allocation for all cells instead of one per row), for
// bulk materializers like the columnar wire decoder. Each returned row is
// full-length (capacity clipped), so appends never alias a neighbor.
func MakeRows(n, width int) []Row {
	rows := make([]Row, n)
	if n == 0 || width == 0 {
		for i := range rows {
			rows[i] = Row{}
		}
		return rows
	}
	block := make([]Value, n*width)
	for i := range rows {
		rows[i] = Row(block[i*width : (i+1)*width : (i+1)*width])
	}
	return rows
}

// Project returns a new row containing only the listed column positions.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// WireSize sums the wire sizes of all cells (Section 6.1 sizing rule).
func (r Row) WireSize() int {
	n := 0
	for i := range r {
		n += r[i].WireSize()
	}
	return n
}

// String renders the row as a pipe-separated line for shells and tests.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i := range r {
		parts[i] = r[i].String()
	}
	return strings.Join(parts, " | ")
}

// CompareRows orders rows lexicographically; used for deterministic output
// ordering in tests and the shell.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// RowSet is a hash set of rows used for duplicate elimination (set semantics
// of the relational algebra in Definition 2.2).
type RowSet struct {
	buckets map[uint64][]Row
	n       int
}

// NewRowSet returns an empty set.
func NewRowSet() *RowSet {
	return &RowSet{buckets: make(map[uint64][]Row)}
}

// Add inserts r and reports whether it was absent before.
func (s *RowSet) Add(r Row) bool {
	h := r.Hash()
	for _, existing := range s.buckets[h] {
		if existing.Equal(r) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], r)
	s.n++
	return true
}

// Contains reports whether r is in the set.
func (s *RowSet) Contains(r Row) bool {
	h := r.Hash()
	for _, existing := range s.buckets[h] {
		if existing.Equal(r) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct rows.
func (s *RowSet) Len() int { return s.n }

// KeySet is a hash set of projected keys, the workhorse of semi-join
// reduction: build from one side's join columns, probe with the other's.
type KeySet struct {
	buckets map[uint64][]Row
	n       int
}

// NewKeySet returns an empty key set.
func NewKeySet() *KeySet {
	return &KeySet{buckets: make(map[uint64][]Row)}
}

// AddKey inserts the projection of r onto cols. Keys containing NULL are
// skipped: a NULL join key can never match under SQL semantics.
func (s *KeySet) AddKey(r Row, cols []int) {
	for _, c := range cols {
		if r[c].IsNull() {
			return
		}
	}
	key := r.Project(cols)
	h := key.Hash()
	for _, existing := range s.buckets[h] {
		if existing.Equal(key) {
			return
		}
	}
	s.buckets[h] = append(s.buckets[h], key)
	s.n++
}

// ContainsKey reports whether the projection of r onto cols is present.
// Keys containing NULL never match (SQL join semantics: NULL != NULL).
func (s *KeySet) ContainsKey(r Row, cols []int) bool {
	for _, c := range cols {
		if r[c].IsNull() {
			return false
		}
	}
	key := r.Project(cols)
	h := key.Hash()
	for _, existing := range s.buckets[h] {
		if existing.Equal(key) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct keys.
func (s *KeySet) Len() int { return s.n }

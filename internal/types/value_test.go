package types

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "DOUBLE",
		KindText: "TEXT", KindBool: "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestValueAccessors(t *testing.T) {
	if v := NewInt(42); v.Int() != 42 || v.Kind() != KindInt || v.IsNull() {
		t.Errorf("NewInt: %v", v)
	}
	if v := NewFloat(2.5); v.Float() != 2.5 || v.Kind() != KindFloat {
		t.Errorf("NewFloat: %v", v)
	}
	if v := NewText("x"); v.Text() != "x" || v.Kind() != KindText {
		t.Errorf("NewText: %v", v)
	}
	if v := NewBool(true); !v.Bool() || v.Kind() != KindBool {
		t.Errorf("NewBool: %v", v)
	}
	if !Null().IsNull() {
		t.Error("Null() not null")
	}
	// Int coerces to Float transparently.
	if NewInt(3).Float() != 3.0 {
		t.Error("Int.Float() != 3.0")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { NewText("x").Int() },
		func() { NewInt(1).Text() },
		func() { NewText("x").Float() },
		func() { NewInt(1).Bool() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewText("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.0), 0}, // numeric kinds compare by value
		{NewInt(1), NewFloat(1.5), -1},
		{NewText("a"), NewText("b"), -1},
		{NewText("b"), NewText("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{Null(), NewInt(0), -1}, // NULL sorts first
		{NewInt(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareMixedKinds(t *testing.T) {
	// Non-numeric distinct kinds order by kind tag, consistently.
	a, b := NewText("z"), NewBool(true)
	if Compare(a, b) == 0 {
		t.Error("text vs bool must not be equal")
	}
	if Compare(a, b) != -Compare(b, a) {
		t.Error("mixed-kind compare not antisymmetric")
	}
}

// randomValue draws a value across kinds, including NULL.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Null()
	case 1:
		return NewInt(int64(rng.Intn(40) - 20))
	case 2:
		return NewFloat(float64(rng.Intn(40))/4 - 5)
	case 3:
		return NewText(string(rune('a' + rng.Intn(6))))
	default:
		return NewBool(rng.Intn(2) == 0)
	}
}

// TestCompareIsTotalOrder property-checks antisymmetry and transitivity.
func TestCompareIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		a, b, c := randomValue(rng), randomValue(rng), randomValue(rng)
		if Compare(a, b) != -Compare(b, a) {
			t.Fatalf("antisymmetry violated: %v vs %v", a, b)
		}
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			t.Fatalf("transitivity violated: %v <= %v <= %v but a > c", a, b, c)
		}
	}
}

// TestHashConsistentWithEqual: Equal values must hash identically
// (including int/float cross-kind equality).
func TestHashConsistentWithEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		a, b := randomValue(rng), randomValue(rng)
		if Equal(a, b) && a.Hash() != b.Hash() {
			t.Fatalf("Equal values hash differently: %v vs %v", a, b)
		}
	}
	if NewInt(3).Hash() != NewFloat(3).Hash() {
		t.Error("3 and 3.0 must hash identically")
	}
}

func TestHashTextNotAmbiguous(t *testing.T) {
	// The terminator prevents concatenation ambiguity across row cells.
	r1 := Row{NewText("ab"), NewText("c")}
	r2 := Row{NewText("a"), NewText("bc")}
	if r1.Hash() == r2.Hash() {
		t.Error("rows with shifted string boundaries must hash differently")
	}
}

func TestWireSize(t *testing.T) {
	cases := []struct {
		v    Value
		want int
	}{
		{Null(), 1},
		{NewInt(1234567), 8},
		{NewFloat(3.14), 8},
		{NewText("hello"), 5},
		{NewText(""), 0},
		{NewBool(true), 1},
	}
	for _, c := range cases {
		if got := c.v.WireSize(); got != c.want {
			t.Errorf("%v.WireSize() = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestCoerce(t *testing.T) {
	if v, err := Coerce(NewInt(3), KindFloat); err != nil || v.Float() != 3 {
		t.Errorf("int->float: %v, %v", v, err)
	}
	if v, err := Coerce(NewFloat(3), KindInt); err != nil || v.Int() != 3 {
		t.Errorf("float(3.0)->int: %v, %v", v, err)
	}
	if _, err := Coerce(NewFloat(3.5), KindInt); err == nil {
		t.Error("float(3.5)->int should fail")
	}
	if v, err := Coerce(NewInt(3), KindText); err != nil || v.Text() != "3" {
		t.Errorf("int->text: %v, %v", v, err)
	}
	if v, err := Coerce(Null(), KindInt); err != nil || !v.IsNull() {
		t.Errorf("null coerces to anything: %v, %v", v, err)
	}
	if _, err := Coerce(NewText("x"), KindBool); err == nil {
		t.Error("text->bool should fail")
	}
}

// TestCoerceQuick property-checks: successful coercion preserves Compare
// equality with the original for numerics.
func TestCoerceQuick(t *testing.T) {
	f := func(n int32) bool {
		v, err := Coerce(NewInt(int64(n)), KindFloat)
		return err == nil && Compare(v, NewInt(int64(n))) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareLargeFloats(t *testing.T) {
	if Compare(NewFloat(math.Inf(1)), NewFloat(math.MaxFloat64)) != 1 {
		t.Error("+inf must exceed MaxFloat64")
	}
	if Compare(NewFloat(math.Inf(-1)), NewInt(math.MinInt64)) != -1 {
		t.Error("-inf must be below MinInt64")
	}
}

package types

import (
	"hash/fnv"
	"math"
	"math/rand"
	"testing"
)

// legacyValueHash is the pre-optimization implementation: feed HashInto into
// a heap-allocated fnv.New64a. The inlined HashFNV must reproduce its output
// bit-for-bit, because Bloom filter contents, hash-table partitioning, and
// the columnar hasher in internal/colstore all assume one hash function.
func legacyValueHash(vs ...Value) uint64 {
	h := fnv.New64a()
	for _, v := range vs {
		v.HashInto(h)
	}
	return h.Sum64()
}

func randomHashValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null()
	case 1:
		return NewInt(rng.Int63() - rng.Int63())
	case 2:
		return NewFloat(rng.NormFloat64() * 1e6)
	case 3:
		alpha := []rune("abc\x00ÿ日本語")
		n := rng.Intn(12)
		s := make([]rune, n)
		for i := range s {
			s[i] = alpha[rng.Intn(len(alpha))]
		}
		return NewText(string(s))
	case 4:
		return NewBool(rng.Intn(2) == 0)
	default:
		// Exercise the int/float equivalence branch.
		n := rng.Int63n(1 << 54)
		if rng.Intn(2) == 0 {
			return NewInt(n)
		}
		return NewFloat(float64(n))
	}
}

func TestHashFNVMatchesLegacyFNV(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		v := randomHashValue(rng)
		if got, want := v.Hash(), legacyValueHash(v); got != want {
			t.Fatalf("Value.Hash mismatch for %v (%s): got %#x want %#x", v, v.Kind(), got, want)
		}
	}
	// Composite keys: Row.Hash and Row.HashKey chain identically.
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(5)
		row := make(Row, n)
		for j := range row {
			row[j] = randomHashValue(rng)
		}
		if got, want := row.Hash(), legacyValueHash(row...); got != want {
			t.Fatalf("Row.Hash mismatch for %v: got %#x want %#x", row, got, want)
		}
		cols := []int{rng.Intn(n)}
		if n > 1 {
			cols = append(cols, rng.Intn(n))
		}
		key := row.Project(cols)
		if got, want := row.HashKey(cols), legacyValueHash(key...); got != want {
			t.Fatalf("Row.HashKey mismatch for %v cols %v: got %#x want %#x", row, cols, got, want)
		}
	}
}

func TestHashFNVEqualValuesHashEqual(t *testing.T) {
	pairs := [][2]Value{
		{NewInt(1), NewFloat(1.0)},
		{NewInt(0), NewFloat(0)},
		{NewInt(-7), NewFloat(-7)},
		{NewInt(1 << 53), NewFloat(float64(1 << 53))},
		// 2^53+1 is not representable as float64; it collapses onto 2^53.
		// Equal treats them as equal (float comparison), so Hash must too.
		{NewInt(1<<53 + 1), NewInt(1 << 53)},
		{Null(), Null()},
	}
	for _, p := range pairs {
		if !Equal(p[0], p[1]) {
			t.Fatalf("expected %v == %v", p[0], p[1])
		}
		if p[0].Hash() != p[1].Hash() {
			t.Fatalf("Equal values hash differently: %v vs %v", p[0], p[1])
		}
	}
	// Text terminator byte: ("a","b") must not collide with ("ab","").
	a := Row{NewText("a"), NewText("b")}
	b := Row{NewText("ab"), NewText("")}
	if a.Hash() == b.Hash() {
		t.Fatalf("terminator failed: %v and %v collide", a, b)
	}
}

func TestRowHashAllocationFree(t *testing.T) {
	row := Row{NewInt(42), NewText("the matrix"), NewFloat(3.14), NewBool(true), Null()}
	cols := []int{1, 3}
	var sink uint64
	if n := testing.AllocsPerRun(200, func() { sink += row.Hash() }); n != 0 {
		t.Fatalf("Row.Hash allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { sink += row.HashKey(cols) }); n != 0 {
		t.Fatalf("Row.HashKey allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { sink += row[0].Hash() }); n != 0 {
		t.Fatalf("Value.Hash allocates %v per run, want 0", n)
	}
	_ = sink
}

func TestFNVHelpers(t *testing.T) {
	// FNVUint64LE must equal hashing the 8 LE bytes one at a time.
	h1 := FNVOffset64
	v := uint64(0xdeadbeefcafe1234)
	var buf [8]byte
	putUint64(buf[:], v)
	for _, b := range buf {
		h1 = FNVByte(h1, b)
	}
	if h2 := FNVUint64LE(FNVOffset64, v); h1 != h2 {
		t.Fatalf("FNVUint64LE mismatch: %#x vs %#x", h1, h2)
	}
	// FNVString must equal the stdlib hashing the same bytes.
	ref := fnv.New64a()
	ref.Write([]byte("hello, 世界"))
	if got := FNVString(FNVOffset64, "hello, 世界"); got != ref.Sum64() {
		t.Fatalf("FNVString mismatch: %#x vs %#x", got, ref.Sum64())
	}
	if math.Float64bits(1.0) == 0 {
		t.Fatal("unreachable; keeps math import honest")
	}
}

// benchRows builds a deterministic mixed-type row sample.
func benchRows(n int) []Row {
	rng := rand.New(rand.NewSource(7))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			NewInt(rng.Int63n(100000)),
			NewText("person_" + string(rune('a'+rng.Intn(26)))),
			NewFloat(rng.Float64()),
			NewInt(rng.Int63n(50)),
		}
	}
	return rows
}

// BenchmarkRowHashKeyInlined measures the allocation-free inlined FNV-1a
// hash of a 2-column key (the semi-join probe hot path).
func BenchmarkRowHashKeyInlined(b *testing.B) {
	rows := benchRows(1024)
	cols := []int{0, 1}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += rows[i&1023].HashKey(cols)
	}
	_ = sink
}

// BenchmarkRowHashKeyLegacy measures the previous implementation (heap
// fnv.New64a per call) for comparison.
func BenchmarkRowHashKeyLegacy(b *testing.B) {
	rows := benchRows(1024)
	cols := []int{0, 1}
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		r := rows[i&1023]
		h := fnv.New64a()
		for _, c := range cols {
			r[c].HashInto(h)
		}
		sink += h.Sum64()
	}
	_ = sink
}

// Package catalog holds logical schema metadata: columns, table definitions,
// primary and foreign keys, and the catalog that maps names to definitions.
//
// The catalog is purely logical; physical storage lives in internal/storage.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"resultdb/internal/types"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type types.Kind
	// NotNull marks columns that reject NULL on insert.
	NotNull bool
}

// ForeignKey records that Columns of this table reference RefColumns of
// RefTable. It is metadata only (used by workload generators and the
// relationship-preserving projection); the engine does not enforce it.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// TableDef is the logical definition of one base table or materialized view.
type TableDef struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string // column names; may be empty
	ForeignKeys []ForeignKey
	// IsView marks materialized views created via CREATE MATERIALIZED VIEW.
	IsView bool

	byName map[string]int
}

// NewTableDef builds a TableDef and its name index. Column names must be
// unique (case-insensitive).
func NewTableDef(name string, cols []Column) (*TableDef, error) {
	d := &TableDef{Name: name, Columns: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := d.byName[key]; dup {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", c.Name, name)
		}
		d.byName[key] = i
	}
	return d, nil
}

// MustTableDef is NewTableDef that panics on error; for statically known
// schemas in workload generators and tests.
func MustTableDef(name string, cols []Column) *TableDef {
	d, err := NewTableDef(name, cols)
	if err != nil {
		panic(err)
	}
	return d
}

// ColumnIndex returns the position of the named column, or -1.
func (d *TableDef) ColumnIndex(name string) int {
	if i, ok := d.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// ColumnNames returns the column names in order.
func (d *TableDef) ColumnNames() []string {
	out := make([]string, len(d.Columns))
	for i, c := range d.Columns {
		out[i] = c.Name
	}
	return out
}

// PrimaryKeyIndexes resolves the primary-key column names to positions.
func (d *TableDef) PrimaryKeyIndexes() []int {
	out := make([]int, 0, len(d.PrimaryKey))
	for _, name := range d.PrimaryKey {
		if i := d.ColumnIndex(name); i >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// Clone returns a deep copy of the definition (so ALTER-like operations and
// view creation never alias the original).
func (d *TableDef) Clone() *TableDef {
	cols := make([]Column, len(d.Columns))
	copy(cols, d.Columns)
	nd := MustTableDef(d.Name, cols)
	nd.PrimaryKey = append([]string(nil), d.PrimaryKey...)
	nd.IsView = d.IsView
	for _, fk := range d.ForeignKeys {
		nd.ForeignKeys = append(nd.ForeignKeys, ForeignKey{
			Columns:    append([]string(nil), fk.Columns...),
			RefTable:   fk.RefTable,
			RefColumns: append([]string(nil), fk.RefColumns...),
		})
	}
	return nd
}

// String renders the definition as a CREATE TABLE-like signature.
func (d *TableDef) String() string {
	var b strings.Builder
	b.WriteString(d.Name)
	b.WriteByte('(')
	for i, c := range d.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Catalog maps table names (case-insensitive) to definitions. It is safe for
// concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableDef
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*TableDef)}
}

// Create registers a table definition. It fails if the name exists.
func (c *Catalog) Create(d *TableDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(d.Name)
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("catalog: table %q already exists", d.Name)
	}
	c.tables[key] = d
	return nil
}

// Drop removes a table definition. It fails if the name is unknown.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key)
	return nil
}

// Lookup returns the definition of name, or an error.
func (c *Catalog) Lookup(name string) (*TableDef, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if d, ok := c.tables[strings.ToLower(name)]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("catalog: table %q does not exist", name)
}

// Has reports whether name is registered.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// Names returns all registered table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, d := range c.tables {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}

// Snapshot is an immutable point-in-time view of the catalog: a frozen
// name→definition map taken in one O(tables) copy. Definitions themselves
// are immutable after registration (ALTER does not exist), so the snapshot
// shares them. Reads on a Snapshot take no lock and stay consistent with
// each other no matter how the live catalog moves on.
type Snapshot struct {
	tables map[string]*TableDef
}

// Snapshot captures the current table set. O(tables).
func (c *Catalog) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tables := make(map[string]*TableDef, len(c.tables))
	for k, d := range c.tables {
		tables[k] = d
	}
	return &Snapshot{tables: tables}
}

// Lookup returns the definition of name in this snapshot, or an error.
func (s *Snapshot) Lookup(name string) (*TableDef, error) {
	if d, ok := s.tables[strings.ToLower(name)]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("catalog: table %q does not exist", name)
}

// Has reports whether name exists in this snapshot.
func (s *Snapshot) Has(name string) bool {
	_, ok := s.tables[strings.ToLower(name)]
	return ok
}

// Names returns the snapshot's table names, sorted.
func (s *Snapshot) Names() []string {
	out := make([]string, 0, len(s.tables))
	for _, d := range s.tables {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}

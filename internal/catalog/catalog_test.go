package catalog

import (
	"strings"
	"testing"

	"resultdb/internal/types"
)

func sampleDef(t *testing.T) *TableDef {
	t.Helper()
	d, err := NewTableDef("customers", []Column{
		{Name: "id", Type: types.KindInt, NotNull: true},
		{Name: "name", Type: types.KindText},
		{Name: "state", Type: types.KindText},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.PrimaryKey = []string{"id"}
	return d
}

func TestNewTableDefRejectsDuplicateColumns(t *testing.T) {
	_, err := NewTableDef("t", []Column{
		{Name: "x", Type: types.KindInt},
		{Name: "X", Type: types.KindText}, // case-insensitive clash
	})
	if err == nil {
		t.Fatal("expected duplicate-column error")
	}
}

func TestColumnIndexCaseInsensitive(t *testing.T) {
	d := sampleDef(t)
	if d.ColumnIndex("NAME") != 1 {
		t.Errorf("ColumnIndex(NAME) = %d, want 1", d.ColumnIndex("NAME"))
	}
	if d.ColumnIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestColumnNamesAndPKIndexes(t *testing.T) {
	d := sampleDef(t)
	if got := strings.Join(d.ColumnNames(), ","); got != "id,name,state" {
		t.Errorf("ColumnNames = %s", got)
	}
	pk := d.PrimaryKeyIndexes()
	if len(pk) != 1 || pk[0] != 0 {
		t.Errorf("PrimaryKeyIndexes = %v", pk)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleDef(t)
	d.ForeignKeys = []ForeignKey{{Columns: []string{"id"}, RefTable: "x", RefColumns: []string{"id"}}}
	c := d.Clone()
	c.PrimaryKey[0] = "name"
	c.ForeignKeys[0].Columns[0] = "state"
	if d.PrimaryKey[0] != "id" || d.ForeignKeys[0].Columns[0] != "id" {
		t.Error("Clone shares slices with the original")
	}
}

func TestTableDefString(t *testing.T) {
	d := sampleDef(t)
	want := "customers(id INTEGER, name TEXT, state TEXT)"
	if got := d.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestCatalogLifecycle(t *testing.T) {
	c := New()
	d := sampleDef(t)
	if err := c.Create(d); err != nil {
		t.Fatal(err)
	}
	if err := c.Create(d); err == nil {
		t.Fatal("duplicate Create should fail")
	}
	if !c.Has("CUSTOMERS") {
		t.Error("Has should be case-insensitive")
	}
	got, err := c.Lookup("Customers")
	if err != nil || got != d {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("Lookup of missing table should fail")
	}
	if err := c.Drop("customers"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("customers"); err == nil {
		t.Error("double Drop should fail")
	}
	if c.Has("customers") {
		t.Error("dropped table still present")
	}
}

func TestCatalogNamesSorted(t *testing.T) {
	c := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if err := c.Create(MustTableDef(n, []Column{{Name: "id", Type: types.KindInt}})); err != nil {
			t.Fatal(err)
		}
	}
	got := strings.Join(c.Names(), ",")
	if got != "alpha,mid,zeta" {
		t.Errorf("Names = %s", got)
	}
}

func TestMustTableDefPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustTableDef should panic on duplicate columns")
		}
	}()
	MustTableDef("t", []Column{{Name: "a"}, {Name: "a"}})
}

package client

import (
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/types"
	"resultdb/internal/wire"
)

func shopDB(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	if _, err := d.ExecScript(`
CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, state TEXT);
CREATE TABLE orders (oid INTEGER PRIMARY KEY, cid INTEGER, pid INTEGER);
CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT, category TEXT);
INSERT INTO customers VALUES (0, 'custA', 'NY'), (1, 'custB', 'CA'), (2, 'custC', 'NY');
INSERT INTO orders VALUES (0, 0, 1), (1, 1, 1), (2, 1, 2), (3, 2, 1), (4, 0, 2), (5, 1, 3);
INSERT INTO products VALUES (0, 'smartphone', 'electronics'), (1, 'laptop', 'electronics'),
                            (2, 'shirt', 'clothing'), (3, 'pants', 'clothing');
`); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRowsScan(t *testing.T) {
	c := Open(shopDB(t))
	rows, err := c.Query("SELECT c.id, c.name FROM customers AS c WHERE c.state = 'NY' ORDER BY c.id")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := strings.Join(rows.Columns(), ","); got != "c.id,c.name" {
		t.Errorf("columns = %s", got)
	}
	var ids []int64
	var names []string
	for rows.Next() {
		var id int64
		var name string
		if err := rows.Scan(&id, &name); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		names = append(names, name)
	}
	if len(ids) != 2 || ids[0] != 0 || names[1] != "custC" {
		t.Errorf("scanned %v %v", ids, names)
	}
	// After exhaustion, Next stays false and Scan errors.
	if rows.Next() {
		t.Error("Next after exhaustion")
	}
	if err := rows.Scan(new(int64), new(string)); err == nil {
		t.Error("Scan after exhaustion should fail")
	}
}

func TestScanTypeMismatches(t *testing.T) {
	c := Open(shopDB(t))
	rows, err := c.Query("SELECT c.id, c.name FROM customers AS c WHERE c.id = 0")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no row")
	}
	if err := rows.Scan(new(string), new(string)); err == nil {
		t.Error("int into *string should fail")
	}
	if err := rows.Scan(new(int64)); err == nil {
		t.Error("arity mismatch should fail")
	}
	var v types.Value
	var f float64
	if err := rows.Scan(&f, &v); err != nil {
		t.Errorf("int into *float64 and *types.Value should work: %v", err)
	}
	if f != 0 || v.Text() != "custA" {
		t.Errorf("scanned %v %v", f, v)
	}
	if err := rows.Scan(new(int64), new(bool)); err == nil {
		t.Error("text into *bool should fail")
	}
}

func TestSubDBCursors(t *testing.T) {
	c := Open(shopDB(t))
	sub, err := c.QuerySubDB(`SELECT RESULTDB c.name, p.name, p.category
		FROM customers AS c, orders AS o, products AS p
		WHERE c.state = 'NY' AND c.id = o.cid AND p.id = o.pid`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sub.Relations(), ","); got != "c,p" {
		t.Errorf("relations = %s", got)
	}
	pc := sub.Cursor("p")
	n := 0
	for pc.Next() {
		n++
	}
	if n != 2 {
		t.Errorf("p cursor rows = %d", n)
	}
	if sub.Cursor("zz") != nil {
		t.Error("unknown cursor should be nil")
	}
	// Fresh cursors iterate independently.
	pc2 := sub.Cursor("p")
	if !pc2.Next() {
		t.Error("fresh cursor exhausted")
	}
}

func TestCoGroups(t *testing.T) {
	c := Open(shopDB(t))
	// RDBRP-style query exposing the join keys on both sides.
	sub, err := c.QuerySubDB(`SELECT RESULTDB c.id, c.name, o.cid, o.pid
		FROM customers AS c, orders AS o
		WHERE c.id = o.cid AND c.state = 'NY'`)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := sub.CoGroup("c", "id", "o", "cid")
	if err != nil {
		t.Fatal(err)
	}
	if cg.Len() != 2 {
		t.Fatalf("co-groups = %d, want 2 (custA, custC)", cg.Len())
	}
	// Groups arrive key-ordered; reconstructing the join from the cursor
	// yields exactly |left| x |right| pairs per key.
	totalPairs := 0
	var keys []int64
	for cg.Next() {
		g := cg.Group()
		keys = append(keys, g.Key.Int())
		if len(g.Left) != 1 {
			t.Errorf("key %v: left rows = %d, want 1 (customer id unique)", g.Key, len(g.Left))
		}
		totalPairs += len(g.Left) * len(g.Right)
	}
	if keys[0] != 0 || keys[1] != 2 {
		t.Errorf("keys = %v, want [0 2]", keys)
	}
	if totalPairs != 3 {
		t.Errorf("pairs = %d, want 3 (the single-table join cardinality)", totalPairs)
	}
	if cg.Group() != nil {
		t.Error("Group after exhaustion should be nil")
	}
}

func TestCoGroupErrors(t *testing.T) {
	c := Open(shopDB(t))
	sub, err := c.QuerySubDB(`SELECT RESULTDB c.id, o.cid FROM customers AS c, orders AS o WHERE c.id = o.cid`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.CoGroup("zz", "id", "o", "cid"); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := sub.CoGroup("c", "zz", "o", "cid"); err == nil {
		t.Error("unknown column should fail")
	}
}

// TestPostJoinPlanShipping: SELECT RESULTDB PRESERVING ships a post-join
// plan; the client reconstructs the single-table result without knowing the
// query — locally and over TCP.
func TestPostJoinPlanShipping(t *testing.T) {
	d := shopDB(t)
	srv := wire.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wc, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	const query = `
		FROM customers AS c, orders AS o, products AS p
		WHERE c.state = 'NY' AND c.id = o.cid AND p.id = o.pid`
	// Ground truth from the classic query.
	want := map[string]int{}
	st, err := d.QuerySQL("SELECT c.name, p.name, p.category " + query)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range st.First().Rows {
		want[r.String()]++
	}

	for name, conn := range map[string]Conn{"local": d, "wire": wc} {
		c := Open(conn)
		sub, err := c.QuerySubDB("SELECT RESULTDB PRESERVING c.name, p.name, p.category " + query)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sub.HasPostJoinPlan() {
			t.Fatalf("%s: no shipped plan", name)
		}
		rows, err := sub.PostJoin()
		if err != nil {
			t.Fatalf("%s: post-join: %v", name, err)
		}
		got := map[string]int{}
		n := 0
		for rows.Next() {
			got[rows.Row().String()]++
			n++
		}
		if n != len(st.First().Rows) {
			t.Errorf("%s: post-join rows = %d, want %d", name, n, len(st.First().Rows))
		}
		for k := range want {
			if got[k] == 0 {
				t.Errorf("%s: post-join missing row %q", name, k)
			}
		}
	}

	// Plain RESULTDB (no PRESERVING) ships no plan; PostJoin errors.
	c := Open(d)
	sub, err := c.QuerySubDB("SELECT RESULTDB c.name, p.name, p.category " + query)
	if err != nil {
		t.Fatal(err)
	}
	if sub.HasPostJoinPlan() {
		t.Error("plain RESULTDB should not ship a plan")
	}
	if _, err := sub.PostJoin(); err == nil {
		t.Error("PostJoin without plan should fail")
	}
}

// TestClientOverWire runs the same API against a TCP connection.
func TestClientOverWire(t *testing.T) {
	d := shopDB(t)
	srv := wire.NewServer(d)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wc, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	c := Open(wc)
	sub, err := c.QuerySubDB(`SELECT RESULTDB c.name, p.category
		FROM customers AS c, orders AS o, products AS p
		WHERE c.id = o.cid AND p.id = o.pid AND c.state = 'NY'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Relations()) != 2 {
		t.Fatalf("relations = %v", sub.Relations())
	}
	rows := sub.Cursor("c")
	var names []string
	for rows.Next() {
		var name string
		if err := rows.Scan(&name); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	if strings.Join(names, ",") != "custA,custC" && strings.Join(names, ",") != "custC,custA" {
		t.Errorf("names = %v", names)
	}
}

package client

import "resultdb/internal/wire"

// Error classification for remote connections, re-exported from the wire
// layer so application code built on this package never needs to import it:
// a failed Exec against a *wire.Client carries a typed kind — retryable
// (transport died; a fresh connection may succeed), terminal (the statement
// itself failed; retrying re-fetches the same error), or corrupt (bytes
// arrived but failed validation). Errors from an embedded *db.Database are
// plain statement errors and classify as none of the three.

// IsRetryable reports whether err is a transient transport failure a retry
// on a fresh connection might fix.
func IsRetryable(err error) bool { return wire.IsRetryable(err) }

// IsTerminal reports whether err is the statement's own failure, which a
// retry would only repeat.
func IsTerminal(err error) bool { return wire.IsTerminal(err) }

// IsCorrupt reports whether err marks a response that arrived but failed
// validation (checksum mismatch, undecodable payload).
func IsCorrupt(err error) bool { return wire.IsCorrupt(err) }

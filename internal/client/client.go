// Package client is the reproduction's answer to the paper's "API
// Integration" proposal (Section 7, item 6): current database APIs expect a
// single cursor of tuples; ResultDB needs a minimally invasive extension
// that returns a *set* of cursors, one per relation, plus a cursor over the
// join co-groups of multiple result sets so clients don't have to hand-roll
// the post-join.
//
// The package works against anything that executes SQL — the in-process
// *db.Database and the TCP *wire.Client both satisfy Conn — so the same
// application code runs embedded or remote.
package client

import (
	"errors"
	"fmt"
	"sort"

	"resultdb/internal/db"
	"resultdb/internal/types"
)

// Conn executes SQL against some database; *db.Database and *wire.Client
// both implement it.
type Conn interface {
	Exec(sql string) (*db.Result, error)
}

// DB is a thin convenience handle over a connection.
type DB struct {
	conn Conn
}

// Open wraps a connection.
func Open(conn Conn) *DB { return &DB{conn: conn} }

// Exec runs a statement without result interpretation (DDL/DML).
func (d *DB) Exec(sql string) (*db.Result, error) { return d.conn.Exec(sql) }

// Query runs a query and returns a cursor over its first (single-table)
// result set — the classic API shape.
func (d *DB) Query(sql string) (*Rows, error) {
	res, err := d.conn.Exec(sql)
	if err != nil {
		return nil, err
	}
	set := res.First()
	if set == nil {
		return nil, errors.New("client: statement returned no result set")
	}
	return newRows(set), nil
}

// QuerySubDB runs a (typically RESULTDB) query and returns the multi-cursor
// result: one named cursor per relation of the subdatabase.
func (d *DB) QuerySubDB(sql string) (*SubDB, error) {
	res, err := d.conn.Exec(sql)
	if err != nil {
		return nil, err
	}
	if len(res.Sets) == 0 {
		return nil, errors.New("client: statement returned no result sets")
	}
	return &SubDB{res: res}, nil
}

// Rows is a forward-only cursor over one result set, in the style of
// database/sql.
type Rows struct {
	set    *db.ResultSet
	pos    int
	closed bool
}

func newRows(set *db.ResultSet) *Rows { return &Rows{set: set, pos: -1} }

// Columns returns the column labels.
func (r *Rows) Columns() []string { return r.set.Columns }

// Name returns the relation label of the cursor's result set.
func (r *Rows) Name() string { return r.set.Name }

// Next advances to the next row; it returns false after the last row or
// after Close.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	r.pos++
	return r.pos < len(r.set.Rows)
}

// Row returns the current raw row (valid after a true Next).
func (r *Rows) Row() types.Row {
	if r.pos < 0 || r.pos >= len(r.set.Rows) {
		return nil
	}
	return r.set.Rows[r.pos]
}

// Scan copies the current row into the destinations: *int64, *float64,
// *string, *bool, or *types.Value. NULL scans into a *types.Value as a NULL
// value and is an error for concrete destinations.
func (r *Rows) Scan(dest ...any) error {
	row := r.Row()
	if row == nil {
		return errors.New("client: Scan called without a successful Next")
	}
	if len(dest) != len(row) {
		return fmt.Errorf("client: Scan expects %d destinations, got %d", len(row), len(dest))
	}
	for i, d := range dest {
		v := row[i]
		switch p := d.(type) {
		case *types.Value:
			*p = v
		case *int64:
			if v.IsNull() || v.Kind() != types.KindInt {
				return fmt.Errorf("client: column %d is %s, not INTEGER", i, v.Kind())
			}
			*p = v.Int()
		case *float64:
			if v.IsNull() || (v.Kind() != types.KindFloat && v.Kind() != types.KindInt) {
				return fmt.Errorf("client: column %d is %s, not numeric", i, v.Kind())
			}
			*p = v.Float()
		case *string:
			if v.IsNull() || v.Kind() != types.KindText {
				return fmt.Errorf("client: column %d is %s, not TEXT", i, v.Kind())
			}
			*p = v.Text()
		case *bool:
			if v.IsNull() || v.Kind() != types.KindBool {
				return fmt.Errorf("client: column %d is %s, not BOOLEAN", i, v.Kind())
			}
			*p = v.Bool()
		default:
			return fmt.Errorf("client: unsupported Scan destination %T", d)
		}
	}
	return nil
}

// Close releases the cursor (idempotent).
func (r *Rows) Close() error {
	r.closed = true
	return nil
}

// SubDB is a subdatabase result: a set of named cursors (the paper's
// extended API) plus co-group iteration.
type SubDB struct {
	res *db.Result
}

// Relations lists the result-set names in server order.
func (s *SubDB) Relations() []string {
	out := make([]string, len(s.res.Sets))
	for i, set := range s.res.Sets {
		out[i] = set.Name
	}
	return out
}

// Cursor returns a fresh cursor over the named relation, or nil.
func (s *SubDB) Cursor(name string) *Rows {
	set := s.res.Set(name)
	if set == nil {
		return nil
	}
	return newRows(set)
}

// Result exposes the underlying raw result.
func (s *SubDB) Result() *db.Result { return s.res }

// PostJoin reconstructs the single-table result from a relationship-
// preserving subdatabase using the plan the server shipped with it
// (SELECT RESULTDB PRESERVING ...; the paper's Section 7 "subdatabase
// snapshot"): the client performs the post-join mechanically, without
// knowing the original query.
func (s *SubDB) PostJoin() (*Rows, error) {
	set, err := db.ExecutePostJoinPlan(s.res)
	if err != nil {
		return nil, err
	}
	return newRows(set), nil
}

// HasPostJoinPlan reports whether the server shipped a post-join plan.
func (s *SubDB) HasPostJoinPlan() bool { return s.res.PostJoinPlan != nil }

// CoGroup builds a cursor over the join co-groups of two relations of the
// subdatabase: for every distinct key value, the rows of the left relation
// whose leftCol equals the key, paired with the rows of the right relation
// whose rightCol equals it (Section 7's "cursor that iterates over the join
// co-groups of multiple result sets"). Keys are emitted in sorted order;
// keys appearing on only one side yield an empty opposite group, so a
// client can implement inner or outer post-joins from the same cursor.
func (s *SubDB) CoGroup(left, leftCol, right, rightCol string) (*CoGroups, error) {
	ls := s.res.Set(left)
	if ls == nil {
		return nil, fmt.Errorf("client: no relation %q in the subdatabase", left)
	}
	rs := s.res.Set(right)
	if rs == nil {
		return nil, fmt.Errorf("client: no relation %q in the subdatabase", right)
	}
	li := colIndex(ls, leftCol)
	if li < 0 {
		return nil, fmt.Errorf("client: relation %q has no column %q", left, leftCol)
	}
	ri := colIndex(rs, rightCol)
	if ri < 0 {
		return nil, fmt.Errorf("client: relation %q has no column %q", right, rightCol)
	}

	groups := map[uint64]*CoGroup{}
	order := []*CoGroup{}
	upsert := func(v types.Value) *CoGroup {
		h := v.Hash()
		if g, ok := groups[h]; ok && types.Equal(g.Key, v) {
			return g
		}
		// Hash collisions between unequal keys fall back to a linear probe
		// over the order slice (vanishingly rare; correctness first).
		for _, g := range order {
			if types.Equal(g.Key, v) {
				return g
			}
		}
		g := &CoGroup{Key: v}
		groups[h] = g
		order = append(order, g)
		return g
	}
	for _, row := range ls.Rows {
		if row[li].IsNull() {
			continue // NULL keys never participate in joins
		}
		g := upsert(row[li])
		g.Left = append(g.Left, row)
	}
	for _, row := range rs.Rows {
		if row[ri].IsNull() {
			continue
		}
		g := upsert(row[ri])
		g.Right = append(g.Right, row)
	}
	sort.Slice(order, func(i, j int) bool {
		return types.Compare(order[i].Key, order[j].Key) < 0
	})
	return &CoGroups{groups: order, pos: -1}, nil
}

// CoGroup is one key's group: all left rows and all right rows sharing it.
type CoGroup struct {
	Key   types.Value
	Left  []types.Row
	Right []types.Row
}

// CoGroups iterates co-groups in ascending key order.
type CoGroups struct {
	groups []*CoGroup
	pos    int
}

// Next advances; false after the last group.
func (c *CoGroups) Next() bool {
	c.pos++
	return c.pos < len(c.groups)
}

// Group returns the current co-group (valid after a true Next).
func (c *CoGroups) Group() *CoGroup {
	if c.pos < 0 || c.pos >= len(c.groups) {
		return nil
	}
	return c.groups[c.pos]
}

// Len returns the number of distinct keys.
func (c *CoGroups) Len() int { return len(c.groups) }

func colIndex(set *db.ResultSet, name string) int {
	for i, c := range set.Columns {
		if equalFold(c, name) {
			return i
		}
	}
	return -1
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

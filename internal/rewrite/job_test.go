package rewrite

import (
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
	"resultdb/internal/workload/job"
)

// TestMethodsAgreeOnJOBTemplates runs all four rewrite methods against every
// JOB template at a small scale and requires each to produce exactly the
// native RESULTDB result (both modes). This is the cross-system consistency
// experiment behind the paper's Figure 8 comparability.
func TestMethodsAgreeOnJOBTemplates(t *testing.T) {
	d := db.New()
	if err := job.Load(d, job.Config{Scale: 0.05, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	for _, q := range job.Queries() {
		sel, err := sqlparse.ParseSelect(q.SQL)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeRDB, ModeRDBRP} {
			dbMode := db.ModeRDB
			if mode == ModeRDBRP {
				dbMode = db.ModeRDBRP
			}
			native, err := d.QueryResultDB(sel, dbMode)
			if err != nil {
				t.Fatalf("%s native: %v", q.Name, err)
			}
			want := subdatabaseFingerprint(native)
			for _, m := range Methods {
				res, err := RunMethod(d, d, sel, m, mode)
				if err != nil {
					t.Fatalf("%s %v mode %d: %v", q.Name, m, mode, err)
				}
				if got := subdatabaseFingerprint(res); got != want {
					t.Errorf("%s %v mode %d disagrees with native:\ngot:  %.300s\nwant: %.300s",
						q.Name, m, mode, got, want)
				}
			}
		}
	}
}

func TestRM4RequiresSingleColumnPK(t *testing.T) {
	d := db.New()
	if _, err := d.ExecScript(`
		CREATE TABLE nopk (x INTEGER, y INTEGER);
		CREATE TABLE other (id INTEGER PRIMARY KEY, x INTEGER);
		INSERT INTO nopk VALUES (1, 2);
		INSERT INTO other VALUES (1, 1);
	`); err != nil {
		t.Fatal(err)
	}
	sel, _ := sqlparse.ParseSelect("SELECT n.y, o.id FROM nopk AS n, other AS o WHERE n.x = o.x")
	if _, err := Rewrite(sel, d, RM4, ModeRDB); err == nil {
		t.Error("RM4 without a primary key should fail")
	}
	// RM1 still works — the advisor-driven runner can fall back.
	if _, err := Rewrite(sel, d, RM1, ModeRDB); err != nil {
		t.Errorf("RM1 should not need a PK: %v", err)
	}
}

func TestRM3FallbackUsesPKForMultiPredicateRelations(t *testing.T) {
	d := db.New()
	if _, err := d.ExecScript(`
		CREATE TABLE hub (id INTEGER PRIMARY KEY, a INTEGER, b INTEGER);
		CREATE TABLE l (id INTEGER PRIMARY KEY, a INTEGER);
		CREATE TABLE r (id INTEGER PRIMARY KEY, b INTEGER);
		INSERT INTO hub VALUES (1, 10, 20), (2, 11, 21), (3, 10, 21);
		INSERT INTO l VALUES (1, 10);
		INSERT INTO r VALUES (1, 21);
	`); err != nil {
		t.Fatal(err)
	}
	// hub joins both neighbors: only hub(3) survives (a=10 AND b=21).
	sel, _ := sqlparse.ParseSelect(`
		SELECT h.id FROM hub AS h, l AS l, r AS r WHERE h.a = l.a AND h.b = r.b`)
	p, err := Rewrite(sel, d, RM3, ModeRDB)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Queries[0].SQL, "h.id IN (SELECT h__inner.id") {
		t.Errorf("expected PK fallback subquery, got: %s", p.Queries[0].SQL)
	}
	res, err := Run(d, p)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedRows(res.Sets[0].Rows)
	if strings.Join(got, ",") != "3" {
		t.Errorf("hub rows = %v, want [3]", got)
	}
}

func TestPlanStatementsAndTeardownOnError(t *testing.T) {
	d := paperExample(t)
	sel, _ := sqlparse.ParseSelect(listing1)
	p, err := Rewrite(sel, d, RM2, ModeRDB)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Statements()); got != len(p.Setup)+len(p.Queries)+len(p.Teardown) {
		t.Errorf("Statements() = %d entries", got)
	}
	// Sabotage one query; teardown must still drop the view.
	p.Queries[0].SQL = "SELECT broken FROM missing"
	if _, err := Run(d, p); err == nil {
		t.Fatal("sabotaged plan should fail")
	}
	for _, name := range d.Catalog().Names() {
		if strings.HasPrefix(name, "resultdb_rm2_mv") {
			t.Errorf("view %q leaked after failed Run", name)
		}
	}
}

func TestMethodString(t *testing.T) {
	if RM1.String() != "RM1" || RM4.String() != "RM4" {
		t.Error("method names")
	}
	if Method(9).String() == "" {
		t.Error("unknown method should render something")
	}
}

// Package rewrite implements the paper's four SQL-based rewrite methods
// (Section 3), which let any SQL-92 system return a result subdatabase by
// running rewritten plain-SQL statements:
//
//	RM 1: dynamic SELECT DISTINCT   — one DISTINCT query per output relation
//	RM 2: materialized DISTINCT     — materialize the join once, DISTINCT from it
//	RM 3: dynamic subquery          — per-relation semi-join via IN (SELECT ...)
//	RM 4: materialized subquery     — materialize a join index of primary keys
//
// The rewriter is pure SQL-to-SQL: it consumes a parsed SELECT and emits SQL
// text for a target system reachable through the Executor interface, exactly
// how the paper drives PostgreSQL.
package rewrite

import (
	"fmt"
	"strings"
	"sync/atomic"

	"resultdb/internal/core"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
)

// Method enumerates the rewrite methods of Figure 4.
type Method uint8

const (
	// RM1 is the dynamic SELECT DISTINCT rewrite (Section 3.1).
	RM1 Method = iota + 1
	// RM2 is the materialized SELECT DISTINCT rewrite (Section 3.2).
	RM2
	// RM3 is the dynamic subquery rewrite (Section 3.3).
	RM3
	// RM4 is the materialized subquery (join index) rewrite (Section 3.4).
	RM4
)

// String names the method as in the paper.
func (m Method) String() string {
	switch m {
	case RM1:
		return "RM1"
	case RM2:
		return "RM2"
	case RM3:
		return "RM3"
	case RM4:
		return "RM4"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Methods lists all four methods in order.
var Methods = []Method{RM1, RM2, RM3, RM4}

// Mode selects which attributes each output relation carries.
type Mode uint8

const (
	// ModeRDB projects A_i (Definition 2.2).
	ModeRDB Mode = iota
	// ModeRDBRP projects A_i* = A_i ∪ A_i^J (Definition 2.3).
	ModeRDBRP
)

// OutputQuery is one rewritten per-relation query.
type OutputQuery struct {
	// Alias names the output relation the query computes.
	Alias string
	// SQL is the rewritten statement.
	SQL string
}

// Plan is a fully rewritten query: run Setup, then each Queries entry (its
// result set is one relation of the subdatabase), then Teardown.
type Plan struct {
	Method   Method
	Setup    []string
	Queries  []OutputQuery
	Teardown []string
}

// Statements flattens the plan for display.
func (p *Plan) Statements() []string {
	var out []string
	out = append(out, p.Setup...)
	for _, q := range p.Queries {
		out = append(out, q.SQL)
	}
	return append(out, p.Teardown...)
}

// mvCounter disambiguates materialized view names across concurrent plans.
var mvCounter atomic.Int64

// Rewrite turns an SPJ SELECT into a Plan under the chosen method and mode.
// src resolves schema metadata (star expansion, primary keys).
func Rewrite(sel *sqlparse.Select, src engine.Source, m Method, mode Mode) (*Plan, error) {
	spec, err := engine.AnalyzeSPJ(sel, src)
	if err != nil {
		return nil, fmt.Errorf("rewrite: %w", err)
	}
	r := &rewriter{sel: sel, spec: spec, src: src, mode: mode}
	switch m {
	case RM1:
		return r.rm1()
	case RM2:
		return r.rm2()
	case RM3:
		return r.rm3()
	case RM4:
		return r.rm4()
	default:
		return nil, fmt.Errorf("rewrite: unknown method %v", m)
	}
}

type rewriter struct {
	sel  *sqlparse.Select
	spec *engine.SPJSpec
	src  engine.Source
	mode Mode
}

// outputs returns the relations of the subdatabase under the current mode.
func (r *rewriter) outputs() []string {
	if r.mode == ModeRDB {
		return r.spec.OutputRels()
	}
	var out []string
	for _, rel := range r.spec.Rels {
		if len(r.spec.ProjectionOf(rel.Alias)) > 0 || len(r.spec.JoinAttrsOf(rel.Alias)) > 0 {
			out = append(out, rel.Alias)
		}
	}
	return out
}

// attrsFor returns the attributes the output relation carries under the mode.
func (r *rewriter) attrsFor(alias string) []string {
	if r.mode == ModeRDB {
		return dedup(r.spec.ProjectionOf(alias))
	}
	return core.RelationshipPreservingAttrs(r.spec, alias)
}

// fromSQL renders the original FROM clause.
func (r *rewriter) fromSQL() string {
	var parts []string
	for _, rel := range r.spec.Rels {
		if strings.EqualFold(rel.Alias, rel.Table) {
			parts = append(parts, rel.Table)
		} else {
			parts = append(parts, rel.Table+" AS "+rel.Alias)
		}
	}
	return strings.Join(parts, ", ")
}

// whereSQL renders the full original predicate (filters + joins + residual)
// as one conjunction, or "".
func (r *rewriter) whereSQL() string {
	var conj []string
	for _, rel := range r.spec.Rels {
		if f := r.spec.FilterSQL(rel.Alias); f != "" {
			conj = append(conj, f)
		}
	}
	for _, j := range r.spec.JoinPreds {
		conj = append(conj, j.String())
	}
	for _, e := range r.spec.Residual {
		conj = append(conj, e.SQL())
	}
	if len(conj) == 0 {
		return ""
	}
	return strings.Join(conj, " AND ")
}

func withWhere(sql, where string) string {
	if where == "" {
		return sql
	}
	return sql + " WHERE " + where
}

// rm1 (Listing 3): one SELECT DISTINCT per output relation over the original
// FROM/WHERE, wrapped in a transaction so all queries see one snapshot.
func (r *rewriter) rm1() (*Plan, error) {
	p := &Plan{
		Method:   RM1,
		Setup:    []string{"BEGIN TRANSACTION"},
		Teardown: []string{"COMMIT"},
	}
	for _, alias := range r.outputs() {
		cols := qualify(alias, r.attrsFor(alias))
		sql := withWhere(fmt.Sprintf("SELECT DISTINCT %s FROM %s",
			strings.Join(cols, ", "), r.fromSQL()), r.whereSQL())
		p.Queries = append(p.Queries, OutputQuery{Alias: alias, SQL: sql})
	}
	return p, nil
}

// rm2 (Listing 4): materialize the joined result once (with disambiguated
// column names), run one SELECT DISTINCT per relation against the view, and
// drop it.
func (r *rewriter) rm2() (*Plan, error) {
	mv := fmt.Sprintf("resultdb_rm2_mv_%d", mvCounter.Add(1))
	var items []string
	for _, alias := range r.outputs() {
		for _, col := range r.attrsFor(alias) {
			items = append(items, fmt.Sprintf("%s.%s AS %s", alias, col, mvCol(alias, col)))
		}
	}
	create := fmt.Sprintf("CREATE MATERIALIZED VIEW %s AS %s", mv,
		withWhere(fmt.Sprintf("SELECT %s FROM %s", strings.Join(items, ", "), r.fromSQL()), r.whereSQL()))
	p := &Plan{
		Method:   RM2,
		Setup:    []string{create},
		Teardown: []string{"DROP MATERIALIZED VIEW " + mv},
	}
	for _, alias := range r.outputs() {
		var cols []string
		for _, col := range r.attrsFor(alias) {
			cols = append(cols, mvCol(alias, col))
		}
		p.Queries = append(p.Queries, OutputQuery{
			Alias: alias,
			SQL:   fmt.Sprintf("SELECT DISTINCT %s FROM %s", strings.Join(cols, ", "), mv),
		})
	}
	return p, nil
}

// rm3 (Listing 5): per output relation, filter it locally and semi-join the
// rest of the query through an IN subquery.
//
// When the relation attaches to the rest of the join graph through exactly
// one join predicate, the subquery projects the opposite side of that
// predicate over the remaining relations (the paper's Listing 5 shape).
// Otherwise the relation's single-column primary key is matched against a
// subquery containing the entire original query with the relation re-aliased
// — the general fallback the paper leaves to "the specific join graph".
func (r *rewriter) rm3() (*Plan, error) {
	p := &Plan{
		Method:   RM3,
		Setup:    []string{"BEGIN TRANSACTION"},
		Teardown: []string{"COMMIT"},
	}
	for _, alias := range r.outputs() {
		q, err := r.rm3Query(alias)
		if err != nil {
			return nil, err
		}
		p.Queries = append(p.Queries, OutputQuery{Alias: alias, SQL: q})
	}
	return p, nil
}

func (r *rewriter) rm3Query(alias string) (string, error) {
	rel, _ := r.spec.RelByAlias(alias)
	cols := qualify(alias, r.attrsFor(alias))
	head := fmt.Sprintf("SELECT DISTINCT %s FROM %s AS %s",
		strings.Join(cols, ", "), rel.Table, alias)

	var conj []string
	if f := r.spec.FilterSQL(alias); f != "" {
		conj = append(conj, f)
	}

	// Join predicates touching this relation, normalized alias-side-left.
	var touching []engine.JoinPred
	for _, j := range r.spec.JoinPreds {
		switch {
		case strings.EqualFold(j.LeftRel, alias):
			touching = append(touching, j)
		case strings.EqualFold(j.RightRel, alias):
			touching = append(touching, j.Reverse())
		}
	}

	switch {
	case len(touching) == 0 && len(r.spec.Rels) == 1:
		// Single-relation query: the filter alone is the answer.
	case len(touching) == 1 && len(r.spec.Residual) == 0:
		// Listing 5 shape: the rest of the relations in the subquery.
		j := touching[0]
		var fromParts []string
		var subConj []string
		for _, other := range r.spec.Rels {
			if strings.EqualFold(other.Alias, alias) {
				continue
			}
			if strings.EqualFold(other.Alias, other.Table) {
				fromParts = append(fromParts, other.Table)
			} else {
				fromParts = append(fromParts, other.Table+" AS "+other.Alias)
			}
			if f := r.spec.FilterSQL(other.Alias); f != "" {
				subConj = append(subConj, f)
			}
		}
		for _, oj := range r.spec.JoinPreds {
			if strings.EqualFold(oj.LeftRel, alias) || strings.EqualFold(oj.RightRel, alias) {
				continue
			}
			subConj = append(subConj, oj.String())
		}
		sub := withWhere(fmt.Sprintf("SELECT %s.%s FROM %s",
			j.RightRel, j.RightCol, strings.Join(fromParts, ", ")), strings.Join(subConj, " AND "))
		conj = append(conj, fmt.Sprintf("%s.%s IN (%s)", alias, j.LeftCol, sub))
	default:
		// General fallback: match the relation's primary key against the
		// whole query with the relation re-aliased.
		pk, err := r.singleColumnPK(rel.Table)
		if err != nil {
			return "", fmt.Errorf("rewrite: RM3 on %s: %w", alias, err)
		}
		alias2 := alias + "__inner"
		sub, err := r.wholeQueryProjecting(alias, alias2, pk)
		if err != nil {
			return "", err
		}
		conj = append(conj, fmt.Sprintf("%s.%s IN (%s)", alias, pk, sub))
	}
	return withWhere(head, strings.Join(conj, " AND ")), nil
}

// wholeQueryProjecting renders the original query with `alias` renamed to
// alias2, projecting alias2.col.
func (r *rewriter) wholeQueryProjecting(alias, alias2, col string) (string, error) {
	ren := func(a string) string {
		if strings.EqualFold(a, alias) {
			return alias2
		}
		return a
	}
	var fromParts []string
	for _, rel := range r.spec.Rels {
		fromParts = append(fromParts, rel.Table+" AS "+ren(rel.Alias))
	}
	var conj []string
	for _, rel := range r.spec.Rels {
		for _, f := range r.spec.Filters[rel.Alias] {
			conj = append(conj, renameSQL(f, alias, alias2))
		}
	}
	for _, j := range r.spec.JoinPreds {
		conj = append(conj, fmt.Sprintf("%s.%s = %s.%s",
			ren(j.LeftRel), j.LeftCol, ren(j.RightRel), j.RightCol))
	}
	for _, e := range r.spec.Residual {
		conj = append(conj, renameSQL(e, alias, alias2))
	}
	return withWhere(fmt.Sprintf("SELECT %s.%s FROM %s",
		alias2, col, strings.Join(fromParts, ", ")), strings.Join(conj, " AND ")), nil
}

// renameSQL renders e with every reference to alias rewritten to alias2.
func renameSQL(e sqlparse.Expr, alias, alias2 string) string {
	clone := cloneExpr(e)
	sqlparse.WalkExpr(clone, func(x sqlparse.Expr) {
		if c, ok := x.(*sqlparse.ColumnRef); ok && strings.EqualFold(c.Table, alias) {
			c.Table = alias2
		}
	})
	return clone.SQL()
}

// rm4 (Listing 6): materialize a join index of the output relations'
// primary keys, then fetch each relation's attributes by PK membership.
func (r *rewriter) rm4() (*Plan, error) {
	mv := fmt.Sprintf("resultdb_rm4_mv_%d", mvCounter.Add(1))
	outputs := r.outputs()
	var items []string
	pks := make(map[string]string, len(outputs))
	for _, alias := range outputs {
		rel, _ := r.spec.RelByAlias(alias)
		pk, err := r.singleColumnPK(rel.Table)
		if err != nil {
			return nil, fmt.Errorf("rewrite: RM4 on %s: %w", alias, err)
		}
		pks[alias] = pk
		items = append(items, fmt.Sprintf("%s.%s AS %s", alias, pk, mvCol(alias, pk)))
	}
	create := fmt.Sprintf("CREATE MATERIALIZED VIEW %s AS %s", mv,
		withWhere(fmt.Sprintf("SELECT DISTINCT %s FROM %s", strings.Join(items, ", "), r.fromSQL()), r.whereSQL()))
	p := &Plan{
		Method:   RM4,
		Setup:    []string{create},
		Teardown: []string{"DROP MATERIALIZED VIEW " + mv},
	}
	for _, alias := range outputs {
		rel, _ := r.spec.RelByAlias(alias)
		cols := qualify(alias, r.attrsFor(alias))
		sql := fmt.Sprintf("SELECT DISTINCT %s FROM %s AS %s WHERE %s.%s IN (SELECT %s FROM %s)",
			strings.Join(cols, ", "), rel.Table, alias, alias, pks[alias], mvCol(alias, pks[alias]), mv)
		p.Queries = append(p.Queries, OutputQuery{Alias: alias, SQL: sql})
	}
	return p, nil
}

// singleColumnPK returns the table's primary key column; the materialized
// subquery rewrites require one.
func (r *rewriter) singleColumnPK(table string) (string, error) {
	t, err := r.src.Table(table)
	if err != nil {
		return "", err
	}
	if len(t.Def.PrimaryKey) != 1 {
		return "", fmt.Errorf("table %q needs a single-column primary key (has %d)",
			table, len(t.Def.PrimaryKey))
	}
	return t.Def.PrimaryKey[0], nil
}

func qualify(alias string, cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = alias + "." + c
	}
	return out
}

func mvCol(alias, col string) string {
	return strings.ToLower(alias) + "_" + strings.ToLower(col)
}

func dedup(attrs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range attrs {
		key := strings.ToLower(a)
		if !seen[key] {
			seen[key] = true
			out = append(out, a)
		}
	}
	return out
}

package rewrite

import (
	"fmt"
	"strings"
	"testing"

	"resultdb/internal/core"
	"resultdb/internal/db"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

// This file is the differential oracle of the reproduction: for a query Q it
// computes the subdatabase six independent ways —
//
//	(1) brute force: denormalized single-table join, then one projection +
//	    dedup per output relation (the textbook reading of Definition 2.2/2.3,
//	    no semi-joins, no folding, no rewrite tricks),
//	(2) native RESULTDB-SEMIJOIN (Algorithm 4),
//	(3)-(6) the four SQL rewrite methods RM1..RM4 (Section 3),
//
// and requires all six to agree exactly (sorted-row comparison per relation),
// in both RDB and RDBRP modes, at parallelism 1 and 4. Any bug in folding,
// reduction order, decomposition, dedup, or the rewrites shows up as a
// divergence from the brute-force reference.

// bruteForceSubdatabase joins all relations into the denormalized
// single-table result and derives each output relation by projection + dedup.
func bruteForceSubdatabase(d *db.Database, sel *sqlparse.Select, mode db.Mode, par int) (*db.Result, error) {
	spec, err := engine.AnalyzeSPJ(sel, d)
	if err != nil {
		return nil, err
	}
	ex := &engine.Executor{Src: d, Parallelism: par}
	joined, err := ex.RunSPJ(spec)
	if err != nil {
		return nil, err
	}
	var outputs []string
	if mode == db.ModeRDBRP {
		for _, r := range spec.Rels {
			if len(spec.ProjectionOf(r.Alias)) > 0 || len(spec.JoinAttrsOf(r.Alias)) > 0 {
				outputs = append(outputs, r.Alias)
			}
		}
	} else {
		outputs = spec.OutputRels()
	}
	res := &db.Result{}
	for _, alias := range outputs {
		var attrs []string
		if mode == db.ModeRDBRP {
			attrs = core.RelationshipPreservingAttrs(spec, alias)
		} else {
			seen := map[string]bool{}
			for _, a := range spec.ProjectionOf(alias) {
				key := strings.ToLower(a)
				if !seen[key] {
					seen[key] = true
					attrs = append(attrs, a)
				}
			}
		}
		cols := make([]int, len(attrs))
		for i, a := range attrs {
			idx, err := joined.ColIndex(alias, a)
			if err != nil {
				return nil, err
			}
			cols[i] = idx
		}
		rel := joined.Project(cols).Distinct()
		res.Sets = append(res.Sets, &db.ResultSet{Name: alias, Columns: attrs, Rows: rel.Rows})
	}
	return res, nil
}

// checkDifferential compares brute force vs native vs RM1..RM4 for one query
// in both modes at the database's current parallelism.
func checkDifferential(t *testing.T, d *db.Database, name string, sel *sqlparse.Select, par int) {
	t.Helper()
	for _, mode := range []db.Mode{db.ModeRDB, db.ModeRDBRP} {
		rwMode := ModeRDB
		if mode == db.ModeRDBRP {
			rwMode = ModeRDBRP
		}
		label := fmt.Sprintf("%s/mode%d/par%d", name, mode, par)
		ref, err := bruteForceSubdatabase(d, sel, mode, par)
		if err != nil {
			t.Fatalf("%s brute force: %v", label, err)
		}
		want := subdatabaseFingerprint(ref)

		native, err := d.QueryResultDB(sel, mode)
		if err != nil {
			t.Fatalf("%s native: %v", label, err)
		}
		if got := subdatabaseFingerprint(native); got != want {
			t.Errorf("%s: native disagrees with brute force:\ngot:  %.400s\nwant: %.400s",
				label, got, want)
		}
		for _, m := range Methods {
			res, err := RunMethod(d, d, sel, m, rwMode)
			if err != nil {
				t.Fatalf("%s %v: %v", label, m, err)
			}
			if got := subdatabaseFingerprint(res); got != want {
				t.Errorf("%s: %v disagrees with brute force:\ngot:  %.400s\nwant: %.400s",
					label, m, got, want)
			}
		}
	}
}

// parseSPJ parses a (possibly RESULTDB-annotated) query and clears the
// RESULTDB flag so the same Select drives all execution paths.
func parseSPJ(t *testing.T, sql string) *sqlparse.Select {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel.ResultDB = false
	sel.Preserving = false
	return sel
}

// TestDifferentialOracleJOB runs the full oracle over all 33 JOB templates at
// parallelism 1 and 4.
func TestDifferentialOracleJOB(t *testing.T) {
	d := db.New()
	if err := job.Load(d, job.Config{Scale: 0.05, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		d.SetParallelism(par)
		for _, q := range job.Queries() {
			checkDifferential(t, d, "job-"+q.Name, parseSPJ(t, q.SQL), par)
		}
	}
}

// TestDifferentialOracleStar runs the oracle on the star-schema queries
// (Figure 7's shape): the full-width star join and the payload-only RDB
// variant, each at two dimension selectivities.
func TestDifferentialOracleStar(t *testing.T) {
	d := db.New()
	cfg := star.DefaultConfig()
	if err := star.Load(d, cfg); err != nil {
		t.Fatal(err)
	}
	queries := map[string]string{
		"star-full-050":    star.Query(cfg, 0.5),
		"star-full-100":    star.Query(cfg, 1.0),
		"star-payload-050": star.PayloadQuery(cfg, 0.5),
		"star-payload-100": star.PayloadQuery(cfg, 1.0),
	}
	for _, par := range []int{1, 4} {
		d.SetParallelism(par)
		for name, sql := range queries {
			checkDifferential(t, d, name, parseSPJ(t, sql), par)
		}
	}
}

// TestDifferentialOracleHierarchy runs the oracle on the hierarchy workload's
// subtype queries (the SPJ formulation of its subdatabase use case).
func TestDifferentialOracleHierarchy(t *testing.T) {
	d := db.New()
	if err := hierarchy.Load(d, hierarchy.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	queries := map[string]string{
		"hier-electronics": hierarchy.ResultDBElectronics,
		"hier-clothing":    hierarchy.ResultDBClothing,
	}
	for _, par := range []int{1, 4} {
		d.SetParallelism(par)
		for name, sql := range queries {
			checkDifferential(t, d, name, parseSPJ(t, sql), par)
		}
	}
}

package rewrite

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
	"resultdb/internal/types"
)

func paperExample(t *testing.T) *db.Database {
	t.Helper()
	d := db.New()
	script := `
CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, state TEXT);
CREATE TABLE orders (oid INTEGER PRIMARY KEY, cid INTEGER, pid INTEGER);
CREATE TABLE products (id INTEGER PRIMARY KEY, name TEXT, category TEXT);
INSERT INTO customers VALUES (0, 'custA', 'NY'), (1, 'custB', 'CA'), (2, 'custC', 'NY');
INSERT INTO orders VALUES (0, 0, 1), (1, 1, 1), (2, 1, 2), (3, 2, 1), (4, 0, 2), (5, 1, 3);
INSERT INTO products VALUES (0, 'smartphone', 'electronics'), (1, 'laptop', 'electronics'),
                            (2, 'shirt', 'clothing'), (3, 'pants', 'clothing');
`
	if _, err := d.ExecScript(script); err != nil {
		t.Fatalf("load: %v", err)
	}
	return d
}

const listing1 = `
SELECT c.name, p.name, p.category
FROM customers AS c, orders AS o, products AS p
WHERE c.state = 'NY' AND c.id = o.cid AND p.id = o.pid`

func sortedRows(rows []types.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// subdatabaseFingerprint renders a result as "alias: rows..." lines, sorted,
// for cross-method comparison.
func subdatabaseFingerprint(res *db.Result) string {
	var parts []string
	for _, set := range res.Sets {
		parts = append(parts, fmt.Sprintf("%s: %s", strings.ToLower(set.Name),
			strings.Join(sortedRows(set.Rows), " ; ")))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// TestAllMethodsAgreeWithNative checks that every rewrite method computes the
// same subdatabase as the native RESULTDB-SEMIJOIN algorithm, in both modes.
func TestAllMethodsAgreeWithNative(t *testing.T) {
	d := paperExample(t)
	sel, err := sqlparse.ParseSelect(listing1)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeRDB, ModeRDBRP} {
		dbMode := db.ModeRDB
		if mode == ModeRDBRP {
			dbMode = db.ModeRDBRP
		}
		native, err := d.QueryResultDB(sel, dbMode)
		if err != nil {
			t.Fatalf("native mode %d: %v", mode, err)
		}
		want := subdatabaseFingerprint(native)
		for _, m := range Methods {
			res, err := RunMethod(d, d, sel, m, mode)
			if err != nil {
				t.Fatalf("%v mode %d: %v", m, mode, err)
			}
			if got := subdatabaseFingerprint(res); got != want {
				t.Errorf("%v mode %d mismatch:\ngot:\n%s\nwant:\n%s", m, mode, got, want)
			}
		}
	}
}

// TestRM3SingleOutputShape checks the Listing 5 shape: with one output
// relation the rewrite pushes the rest of the query into an IN subquery.
func TestRM3SingleOutputShape(t *testing.T) {
	d := paperExample(t)
	sel, err := sqlparse.ParseSelect(`
SELECT DISTINCT c.name FROM customers AS c, orders AS o
WHERE c.state = 'NY' AND c.id = o.cid`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Rewrite(sel, d, RM3, ModeRDB)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Queries) != 1 {
		t.Fatalf("expected 1 output query, got %d", len(p.Queries))
	}
	sql := p.Queries[0].SQL
	if !strings.Contains(sql, "IN (SELECT o.cid FROM orders AS o") {
		t.Errorf("RM3 did not produce the Listing 5 subquery shape: %s", sql)
	}
	res, err := Run(d, p)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedRows(res.Sets[0].Rows)
	want := []string{"custA", "custC"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("RM3 rows = %v, want %v", got, want)
	}
}

// TestRM2MaterializedViewCleanup verifies the view is dropped after Run.
func TestRM2MaterializedViewCleanup(t *testing.T) {
	d := paperExample(t)
	sel, err := sqlparse.ParseSelect(listing1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Rewrite(sel, d, RM2, ModeRDB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(d, p); err != nil {
		t.Fatal(err)
	}
	for _, name := range d.Catalog().Names() {
		if strings.HasPrefix(name, "resultdb_rm2_mv") {
			t.Errorf("materialized view %q leaked", name)
		}
	}
}

func TestRecommend(t *testing.T) {
	d := paperExample(t)
	multi, _ := sqlparse.ParseSelect(listing1)
	if m, err := Recommend(multi, d); err != nil || m != RM4 {
		t.Errorf("Recommend(multi-output) = %v, %v; want RM4", m, err)
	}
	single, _ := sqlparse.ParseSelect(
		`SELECT c.name FROM customers AS c, orders AS o WHERE c.id = o.cid`)
	if m, err := Recommend(single, d); err != nil || m != RM3 {
		t.Errorf("Recommend(single-output) = %v, %v; want RM3", m, err)
	}
}

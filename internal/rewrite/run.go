package rewrite

import (
	"fmt"
	"strings"

	"resultdb/internal/db"
	"resultdb/internal/engine"
	"resultdb/internal/sqlparse"
)

// Executor runs SQL text against a target system; *db.Database satisfies it.
// The paper targets PostgreSQL through the identical narrow surface (SQL in,
// result sets out), which is exactly what makes RM 1–4 applicable to
// closed-source systems.
type Executor interface {
	Exec(sql string) (*db.Result, error)
}

// cloneExpr is a package-local alias kept next to its use site.
func cloneExpr(e sqlparse.Expr) sqlparse.Expr { return sqlparse.CloneExpr(e) }

// Run executes a plan: setup statements, one query per output relation, and
// teardown (teardown runs even if a query fails, so materialized views never
// leak). The returned result carries one set per output relation.
func Run(ex Executor, p *Plan) (*db.Result, error) {
	for _, sql := range p.Setup {
		if _, err := ex.Exec(sql); err != nil {
			return nil, fmt.Errorf("rewrite: setup %q: %w", sql, err)
		}
	}
	res := &db.Result{}
	var firstErr error
	for _, q := range p.Queries {
		r, err := ex.Exec(q.SQL)
		if err != nil {
			firstErr = fmt.Errorf("rewrite: query %q: %w", q.SQL, err)
			break
		}
		set := r.First()
		if set == nil {
			firstErr = fmt.Errorf("rewrite: query %q returned no result set", q.SQL)
			break
		}
		set.Name = q.Alias
		for i, c := range set.Columns {
			// Normalize "table.alias_col" / "alias.col" / "alias_col"
			// labels to plain column names.
			if dot := strings.LastIndexByte(c, '.'); dot >= 0 {
				c = c[dot+1:]
			}
			if cut, ok := strings.CutPrefix(strings.ToLower(c), strings.ToLower(q.Alias)+"_"); ok {
				c = cut
			}
			set.Columns[i] = c
		}
		res.Sets = append(res.Sets, set)
	}
	for _, sql := range p.Teardown {
		if _, err := ex.Exec(sql); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("rewrite: teardown %q: %w", sql, err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// Recommend implements the paper's Section 6.2 rule of thumb: use RM 3 when
// a single relation is referenced in the projections, RM 4 otherwise (it won
// in 75% of their cases).
func Recommend(sel *sqlparse.Select, src engine.Source) (Method, error) {
	spec, err := engine.AnalyzeSPJ(sel, src)
	if err != nil {
		return 0, err
	}
	if len(spec.OutputRels()) == 1 {
		return RM3, nil
	}
	return RM4, nil
}

// RunMethod rewrites and runs sel under one method in one call.
func RunMethod(ex Executor, src engine.Source, sel *sqlparse.Select, m Method, mode Mode) (*db.Result, error) {
	p, err := Rewrite(sel, src, m, mode)
	if err != nil {
		return nil, err
	}
	return Run(ex, p)
}

// Package bench regenerates every table and figure of the paper's
// evaluation (Section 6) against the synthetic workloads:
//
//	Table 1  — result set sizes and compression ratios (ST vs RDBRP vs RDB)
//	Figure 7 — theoretical star-schema result sizes over filter selectivity
//	Figure 8 — query execution time of rewrite methods RM 1-4
//	Table 2  — overhead of the best rewrite method vs single-table
//	Figure 9 — native RESULTDB-SEMIJOIN vs Single Table + Decompose
//	Table 3  — end-to-end runtime with data transfer and post-join
//
// plus two ablations for the paper's open enumeration problems (root-node
// choice, fold choice). Each experiment returns structured rows and has a
// Format* companion producing paper-style text output.
package bench

import (
	"fmt"
	"sort"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
	"resultdb/internal/workload/job"
)

// Env is a loaded benchmark database plus its workload metadata.
type Env struct {
	DB  *db.Database
	Cfg job.Config
	// Reps is how many runs feed each median (the paper uses 5).
	Reps int
	// sels caches parsed query ASTs.
	sels map[string]*sqlparse.Select
}

// NewJOBEnv loads the JOB-like workload at the given scale (1.0 = default).
func NewJOBEnv(scale float64) (*Env, error) {
	cfg := job.DefaultConfig()
	if scale > 0 {
		cfg.Scale = scale
	}
	d := db.New()
	if err := job.Load(d, cfg); err != nil {
		return nil, err
	}
	return &Env{DB: d, Cfg: cfg, Reps: 5, sels: make(map[string]*sqlparse.Select)}, nil
}

// Select returns the parsed AST of a named JOB query.
func (e *Env) Select(name string) (*sqlparse.Select, error) {
	if sel, ok := e.sels[name]; ok {
		return sel, nil
	}
	q, err := job.QueryByName(name)
	if err != nil {
		return nil, err
	}
	sel, err := sqlparse.ParseSelect(q.SQL)
	if err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", name, err)
	}
	e.sels[name] = sel
	return sel, nil
}

// allQueryNames lists every JOB template name.
func allQueryNames() []string {
	var out []string
	for _, q := range job.Queries() {
		out = append(out, q.Name)
	}
	return out
}

// median runs fn reps times and returns the median duration. fn's result
// error aborts.
func median(reps int, fn func() error) (time.Duration, error) {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// kib renders bytes as KiB with two decimals, the paper's Table 1 unit.
func kib(bytes int) float64 { return float64(bytes) / 1024 }

// ms renders a duration in milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

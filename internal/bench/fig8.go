package bench

import (
	"fmt"
	"strings"
	"time"

	"resultdb/internal/rewrite"
	"resultdb/internal/workload/job"
)

// RMTiming is one Figure 8 group: median execution time of each rewrite
// method on one query. A zero duration with a non-empty Err marks a method
// that does not apply (e.g. RM 4 without a primary key).
type RMTiming struct {
	Query string
	Times map[rewrite.Method]time.Duration
	Errs  map[rewrite.Method]string
}

// Fig8 measures the rewrite methods on the given JOB queries (nil = all 33)
// in RDB mode. As in the paper, each rewrite's reported time covers all of
// its statements (view creation + per-relation queries + cleanup); we time
// in-process execution, which plays the role of the paper's COUNT(*)
// aggregation by excluding client transfer from the measurement.
func (e *Env) Fig8(names []string) ([]RMTiming, error) {
	if names == nil {
		for _, q := range job.Queries() {
			names = append(names, q.Name)
		}
	}
	out := make([]RMTiming, 0, len(names))
	for _, name := range names {
		sel, err := e.Select(name)
		if err != nil {
			return nil, err
		}
		row := RMTiming{
			Query: name,
			Times: make(map[rewrite.Method]time.Duration, len(rewrite.Methods)),
			Errs:  make(map[rewrite.Method]string),
		}
		for _, m := range rewrite.Methods {
			plan, err := rewrite.Rewrite(sel, e.DB, m, rewrite.ModeRDB)
			if err != nil {
				row.Errs[m] = err.Error()
				continue
			}
			med, err := median(e.Reps, func() error {
				_, err := rewrite.Run(e.DB, plan)
				return err
			})
			if err != nil {
				row.Errs[m] = err.Error()
				continue
			}
			row.Times[m] = med
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatFig8 renders the grouped bars as a table (ms), one row per query.
func FormatFig8(rows []RMTiming) string {
	var b strings.Builder
	b.WriteString("Figure 8: query execution time of the rewrite methods [ms]\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %10s %10s\n", "Query", "RM1", "RM2", "RM3", "RM4")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s", r.Query)
		for _, m := range rewrite.Methods {
			if msg, bad := r.Errs[m]; bad {
				fmt.Fprintf(&b, " %10s", "n/a")
				_ = msg
				continue
			}
			fmt.Fprintf(&b, " %10.2f", ms(r.Times[m]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Best returns the fastest applicable method and its time.
func (r RMTiming) Best() (rewrite.Method, time.Duration) {
	var best rewrite.Method
	var bestT time.Duration
	for _, m := range rewrite.Methods {
		t, ok := r.Times[m]
		if !ok {
			continue
		}
		if best == 0 || t < bestT {
			best, bestT = m, t
		}
	}
	return best, bestT
}

package bench

import (
	"fmt"
	"strings"

	"resultdb/internal/db"
	"resultdb/internal/workload/job"
)

// SizeRow is one Table 1 entry: result set sizes in bytes for the three
// query types (Section 6, "Query Types") and the derived compression ratios.
type SizeRow struct {
	Query string
	ST    int
	RDBRP int
	RDB   int
}

// RatioRDBRP is size(ST)/size(RDBRP), the paper's compression ratio.
func (r SizeRow) RatioRDBRP() float64 { return ratio(r.ST, r.RDBRP) }

// RatioRDB is size(ST)/size(RDB).
func (r SizeRow) RatioRDB() float64 { return ratio(r.ST, r.RDB) }

func ratio(st, sub int) float64 {
	if sub == 0 {
		return 0
	}
	return float64(st) / float64(sub)
}

// Table1 measures result set sizes for the given JOB queries (defaults to
// the paper's ten) under ST, RDBRP, and RDB.
func (e *Env) Table1(queries []string) ([]SizeRow, error) {
	if queries == nil {
		queries = job.Table1Queries
	}
	rows := make([]SizeRow, 0, len(queries))
	for _, name := range queries {
		sel, err := e.Select(name)
		if err != nil {
			return nil, err
		}
		st, err := e.DB.Query(sel)
		if err != nil {
			return nil, fmt.Errorf("bench: %s ST: %w", name, err)
		}
		rdbrp, err := e.DB.QueryResultDB(sel, db.ModeRDBRP)
		if err != nil {
			return nil, fmt.Errorf("bench: %s RDBRP: %w", name, err)
		}
		rdb, err := e.DB.QueryResultDB(sel, db.ModeRDB)
		if err != nil {
			return nil, fmt.Errorf("bench: %s RDB: %w", name, err)
		}
		rows = append(rows, SizeRow{
			Query: name,
			ST:    st.WireSize(),
			RDBRP: rdbrp.WireSize(),
			RDB:   rdb.WireSize(),
		})
	}
	return rows, nil
}

// FormatTable1 renders rows like the paper's Table 1: sizes in KiB with the
// compression ratio in parentheses.
func FormatTable1(rows []SizeRow) string {
	var b strings.Builder
	b.WriteString("Table 1: JOB result set sizes in KiB (compression ratio)\n")
	fmt.Fprintf(&b, "%-8s %14s %22s %22s\n", "Query", "ST", "RDBRP", "RDB")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %10.2f (1.0) %14.2f (%6.1f) %14.2f (%6.1f)\n",
			r.Query, kib(r.ST), kib(r.RDBRP), r.RatioRDBRP(), kib(r.RDB), r.RatioRDB())
	}
	return b.String()
}

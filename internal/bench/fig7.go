package bench

import (
	"fmt"
	"strings"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
	"resultdb/internal/workload/star"
)

// StarPoint is one Figure 7 data point: result set sizes (bytes) of the
// star-schema query at one dimension-filter selectivity.
type StarPoint struct {
	Selectivity float64
	ST          int
	RDBRP       int
	RDB         int
}

// Redundancy is the denormalization redundancy band of Figure 7: the bytes
// the single-table result spends repeating dimension data that RDBRP
// returns exactly once.
func (p StarPoint) Redundancy() int { return p.ST - p.RDBRP }

// Fig7 loads a fresh star schema and sweeps the filter selectivity,
// measuring the three result sizes at each point. Selectivities defaults to
// 0.1 .. 1.0 in steps of 0.1 (the paper's x-axis).
func Fig7(cfg star.Config, selectivities []float64) ([]StarPoint, error) {
	if selectivities == nil {
		for s := 0.1; s <= 1.0001; s += 0.1 {
			selectivities = append(selectivities, s)
		}
	}
	d := db.New()
	if err := star.Load(d, cfg); err != nil {
		return nil, err
	}
	points := make([]StarPoint, 0, len(selectivities))
	for _, s := range selectivities {
		full, err := sqlparse.ParseSelect(star.Query(cfg, s))
		if err != nil {
			return nil, err
		}
		payload, err := sqlparse.ParseSelect(star.PayloadQuery(cfg, s))
		if err != nil {
			return nil, err
		}
		st, err := d.Query(full)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 ST s=%.1f: %w", s, err)
		}
		// RDBRP keeps key information (paper: "both Single Table and RDBRP
		// include this key information"), so it runs on the full query.
		rdbrp, err := d.QueryResultDB(full, db.ModeRDBRP)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 RDBRP s=%.1f: %w", s, err)
		}
		// RDB projects only the payloads: no primary or foreign keys.
		rdb, err := d.QueryResultDB(payload, db.ModeRDB)
		if err != nil {
			return nil, fmt.Errorf("bench: fig7 RDB s=%.1f: %w", s, err)
		}
		points = append(points, StarPoint{
			Selectivity: s,
			ST:          st.WireSize(),
			RDBRP:       rdbrp.WireSize(),
			RDB:         rdb.WireSize(),
		})
	}
	return points, nil
}

// FormatFig7 renders the series as aligned columns (KiB), one row per
// selectivity — the data behind the paper's Figure 7 plot.
func FormatFig7(points []StarPoint) string {
	var b strings.Builder
	b.WriteString("Figure 7: star schema result set sizes [KiB] vs dimension filter selectivity\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %14s\n", "selectivity", "SingleTable", "RDBRP", "RDB", "redundancy")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12.1f %12.2f %12.2f %12.2f %14.2f\n",
			p.Selectivity, kib(p.ST), kib(p.RDBRP), kib(p.RDB), kib(p.Redundancy()))
	}
	return b.String()
}

package bench

import (
	"fmt"
	"strings"
	"time"

	"resultdb/internal/core"
	"resultdb/internal/engine"
	"resultdb/internal/workload/job"
)

// Fig9Row is one Figure 9 group: the single-table execution time, the extra
// Decompose time on top of it, and the native RESULTDB-SEMIJOIN time, all
// medians. The paper plots ST+Decompose as a stacked bar next to the
// semi-join algorithm.
type Fig9Row struct {
	Query     string
	ST        time.Duration
	Decompose time.Duration
	SemiJoin  time.Duration
	Stats     *core.Stats
}

// Fig9 measures the in-engine comparison (Section 6.3) on the given queries
// (nil = all 33). As in the paper, only row counts are "returned" — both
// sides materialize their result sets in memory and no client transfer
// happens; cardinalities are exact by construction (materialized
// intermediates), mirroring the paper's true-cardinality injection.
func (e *Env) Fig9(names []string) ([]Fig9Row, error) {
	if names == nil {
		for _, q := range job.Queries() {
			names = append(names, q.Name)
		}
	}
	ex := &engine.Executor{Src: e.DB}
	out := make([]Fig9Row, 0, len(names))
	for _, name := range names {
		sel, err := e.Select(name)
		if err != nil {
			return nil, err
		}
		spec, err := engine.AnalyzeSPJ(sel, e.DB)
		if err != nil {
			return nil, fmt.Errorf("bench: fig9 %s: %w", name, err)
		}

		row := Fig9Row{Query: name}

		// Single-table execution (the paper's baseline bar).
		row.ST, err = median(e.Reps, func() error {
			_, err := ex.RunSPJ(spec)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fig9 %s ST: %w", name, err)
		}

		// ST + Decompose, reported as the decompose increment.
		stPlusDec, err := median(e.Reps, func() error {
			joined, err := ex.RunSPJ(spec)
			if err != nil {
				return err
			}
			_, err = core.Decompose(joined, spec.OutputRels())
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fig9 %s decompose: %w", name, err)
		}
		if stPlusDec > row.ST {
			row.Decompose = stPlusDec - row.ST
		}

		// Native RESULTDB-SEMIJOIN (Algorithm 4 with early stop).
		row.SemiJoin, err = median(e.Reps, func() error {
			rels, err := ex.BaseRelations(spec)
			if err != nil {
				return err
			}
			reduced, stats, err := core.SemiJoinReduce(spec, rels, nil, e.DB.CoreOptions)
			if err != nil {
				return err
			}
			row.Stats = stats
			_ = reduced
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: fig9 %s semijoin: %w", name, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatFig9 renders the stacked comparison (ms).
func FormatFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Figure 9: RESULTDB-SEMIJOIN vs Single Table + Decompose [ms]\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %14s %s\n", "Query", "SingleTable", "Decompose", "SemiJoinAlgo", "stats")
	for _, r := range rows {
		stats := ""
		if r.Stats != nil {
			stats = r.Stats.String()
		}
		fmt.Fprintf(&b, "%-6s %12.2f %12.2f %14.2f %s\n",
			r.Query, ms(r.ST), ms(r.Decompose), ms(r.SemiJoin), stats)
	}
	return b.String()
}

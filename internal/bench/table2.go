package bench

import (
	"fmt"
	"strings"
	"time"

	"resultdb/internal/rewrite"
)

// OverheadRow is one Table 2 entry: the best rewrite method per query and
// its overhead relative to single-table execution (negative = faster).
type OverheadRow struct {
	Query    string
	Best     rewrite.Method
	BestTime time.Duration
	STTime   time.Duration
}

// Overhead is (best - st)/st as a percentage, the paper's Table 2 number.
func (r OverheadRow) Overhead() float64 {
	if r.STTime == 0 {
		return 0
	}
	return (float64(r.BestTime)/float64(r.STTime) - 1) * 100
}

// Table2 measures single-table baselines and combines them with Figure 8
// timings into per-query overheads. Passing the already-computed fig8 rows
// avoids re-running the rewrites.
func (e *Env) Table2(fig8 []RMTiming) ([]OverheadRow, error) {
	out := make([]OverheadRow, 0, len(fig8))
	for _, rm := range fig8 {
		sel, err := e.Select(rm.Query)
		if err != nil {
			return nil, err
		}
		st, err := median(e.Reps, func() error {
			_, err := e.DB.Query(sel)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s ST: %w", rm.Query, err)
		}
		best, bestT := rm.Best()
		out = append(out, OverheadRow{Query: rm.Query, Best: best, BestTime: bestT, STTime: st})
	}
	return out, nil
}

// FormatTable2 renders per-query overheads like the paper's Table 2.
func FormatTable2(rows []OverheadRow) string {
	var b strings.Builder
	b.WriteString("Table 2: overhead of the best rewrite method vs single-table execution\n")
	fmt.Fprintf(&b, "%-6s %10s %8s %12s %12s\n", "Query", "Overhead", "Best", "Best [ms]", "ST [ms]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %9.1f%% %8s %12.2f %12.2f\n",
			r.Query, r.Overhead(), r.Best, ms(r.BestTime), ms(r.STTime))
	}
	wins := map[rewrite.Method]int{}
	for _, r := range rows {
		wins[r.Best]++
	}
	b.WriteString("best-method wins:")
	for _, m := range rewrite.Methods {
		fmt.Fprintf(&b, " %s=%d", m, wins[m])
	}
	b.WriteByte('\n')
	return b.String()
}

package bench

import (
	"fmt"
	"strings"
	"time"
)

// JoinOrderRow compares single-table execution under the greedy join order
// and the DPsize optimizer on one query.
type JoinOrderRow struct {
	Query  string
	Greedy time.Duration
	DP     time.Duration
}

// AblationJoinOrder measures greedy vs DP join ordering for the single-table
// execution of the given JOB queries (nil = all 33). An engine-substrate
// ablation: it quantifies how much the paper's "true cardinality" framing
// depends on the ordering policy.
func (e *Env) AblationJoinOrder(names []string) ([]JoinOrderRow, error) {
	if names == nil {
		for _, q := range allQueryNames() {
			names = append(names, q)
		}
	}
	var out []JoinOrderRow
	defer func() { e.DB.DPJoinOrder = false }()
	for _, name := range names {
		sel, err := e.Select(name)
		if err != nil {
			return nil, err
		}
		row := JoinOrderRow{Query: name}

		e.DB.DPJoinOrder = false
		row.Greedy, err = median(e.Reps, func() error {
			_, err := e.DB.Query(sel)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: joinorder %s greedy: %w", name, err)
		}

		e.DB.DPJoinOrder = true
		row.DP, err = median(e.Reps, func() error {
			_, err := e.DB.Query(sel)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: joinorder %s dp: %w", name, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// FormatJoinOrder renders the comparison.
func FormatJoinOrder(rows []JoinOrderRow) string {
	var b strings.Builder
	b.WriteString("Ablation: join ordering for single-table execution [ms]\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %8s\n", "Query", "greedy", "DPsize", "speedup")
	for _, r := range rows {
		speedup := 1.0
		if r.DP > 0 {
			speedup = float64(r.Greedy) / float64(r.DP)
		}
		fmt.Fprintf(&b, "%-6s %12.2f %12.2f %7.2fx\n", r.Query, ms(r.Greedy), ms(r.DP), speedup)
	}
	return b.String()
}

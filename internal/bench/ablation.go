package bench

import (
	"fmt"
	"strings"
	"time"

	"resultdb/internal/core"
	"resultdb/internal/engine"
	"resultdb/internal/workload/job"
)

// AblationRow compares strategy variants of the RESULTDB-SEMIJOIN algorithm
// on one query: the paper's heuristics against naive baselines, quantifying
// the Root Node Enumeration Problem and Tree Folding Enumeration Problem
// (Sections 4.2/4.3, future work 1).
type AblationRow struct {
	Query    string
	Variants map[string]time.Duration
	// SemiJoins tracks reduction work per variant (semi-joins executed).
	SemiJoins map[string]int
}

// rootVariants are the Root Node Enumeration ablation points.
var rootVariants = []struct {
	Name string
	Opts core.Options
}{
	{"heuristic", core.Options{Root: core.RootHeuristic, Fold: core.FoldMaxDegree, EarlyStop: true}},
	{"first-node", core.Options{Root: core.RootFirst, Fold: core.FoldMaxDegree, EarlyStop: true}},
	{"max-degree", core.Options{Root: core.RootMaxDegree, Fold: core.FoldMaxDegree, EarlyStop: true}},
	{"no-early-stop", core.Options{Root: core.RootHeuristic, Fold: core.FoldMaxDegree, EarlyStop: false}},
}

// bloomVariants compare the exact algorithm with the Bloom-prefilter
// variant (the Section 5 predicate-transfer adaptation) at two target
// false-positive rates.
var bloomVariants = []struct {
	Name string
	Opts core.Options
}{
	{"exact", core.Options{Root: core.RootHeuristic, Fold: core.FoldMaxDegree, EarlyStop: true}},
	{"bloom-1pct", core.Options{Root: core.RootHeuristic, Fold: core.FoldMaxDegree, EarlyStop: true, BloomPrefilter: true, BloomFPRate: 0.01}},
	{"bloom-10pct", core.Options{Root: core.RootHeuristic, Fold: core.FoldMaxDegree, EarlyStop: true, BloomPrefilter: true, BloomFPRate: 0.10}},
}

// AblationBloom measures the Bloom-prefilter variants on the given queries
// (nil = all 33).
func (e *Env) AblationBloom(names []string) ([]AblationRow, []string, error) {
	variantNames := make([]string, len(bloomVariants))
	for i, v := range bloomVariants {
		variantNames[i] = v.Name
	}
	rows, err := e.ablate(names, func(run func(core.Options) error) (map[string]time.Duration, map[string]int, error) {
		return timeVariants(e.Reps, bloomVariants, run)
	})
	return rows, variantNames, err
}

// foldVariants are the Tree Folding Enumeration ablation points (they only
// differ on cyclic queries).
var foldVariants = []struct {
	Name string
	Opts core.Options
}{
	{"max-degree", core.Options{Root: core.RootHeuristic, Fold: core.FoldMaxDegree, EarlyStop: true}},
	{"first-edge", core.Options{Root: core.RootHeuristic, Fold: core.FoldFirst, EarlyStop: true}},
	{"min-card", core.Options{Root: core.RootHeuristic, Fold: core.FoldMinCard, EarlyStop: true}},
	// alpha-reduce avoids folding altogether when the cycle consists of
	// transitively implied predicates (this repo's extension).
	{"alpha-reduce", core.Options{Root: core.RootHeuristic, Fold: core.FoldMaxDegree, EarlyStop: true, AlphaReduce: true}},
}

// AblationRoot measures the root-strategy variants on the given queries
// (nil = all 33).
func (e *Env) AblationRoot(names []string) ([]AblationRow, []string, error) {
	variantNames := make([]string, len(rootVariants))
	for i, v := range rootVariants {
		variantNames[i] = v.Name
	}
	rows, err := e.ablate(names, func(run func(core.Options) error) (map[string]time.Duration, map[string]int, error) {
		return timeVariants(e.Reps, rootVariants, run)
	})
	return rows, variantNames, err
}

// AblationFold measures the fold-strategy variants on the cyclic queries
// (nil = every query marked Cyclic in the workload).
func (e *Env) AblationFold(names []string) ([]AblationRow, []string, error) {
	if names == nil {
		for _, q := range job.Queries() {
			if q.Cyclic {
				names = append(names, q.Name)
			}
		}
	}
	variantNames := make([]string, len(foldVariants))
	for i, v := range foldVariants {
		variantNames[i] = v.Name
	}
	rows, err := e.ablate(names, func(run func(core.Options) error) (map[string]time.Duration, map[string]int, error) {
		return timeVariants(e.Reps, foldVariants, run)
	})
	return rows, variantNames, err
}

func (e *Env) ablate(names []string,
	timer func(func(core.Options) error) (map[string]time.Duration, map[string]int, error),
) ([]AblationRow, error) {
	if names == nil {
		for _, q := range job.Queries() {
			names = append(names, q.Name)
		}
	}
	ex := &engine.Executor{Src: e.DB}
	var out []AblationRow
	for _, name := range names {
		sel, err := e.Select(name)
		if err != nil {
			return nil, err
		}
		spec, err := engine.AnalyzeSPJ(sel, e.DB)
		if err != nil {
			return nil, err
		}
		times, joins, err := timer(func(opts core.Options) error {
			rels, err := ex.BaseRelations(spec)
			if err != nil {
				return err
			}
			_, st, err := core.SemiJoinReduce(spec, rels, nil, opts)
			if err != nil {
				return err
			}
			lastStats = st
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", name, err)
		}
		out = append(out, AblationRow{Query: name, Variants: times, SemiJoins: joins})
	}
	return out, nil
}

// lastStats carries the most recent run's stats out of the timed closure.
var lastStats *core.Stats

func timeVariants(reps int, variants []struct {
	Name string
	Opts core.Options
}, run func(core.Options) error) (map[string]time.Duration, map[string]int, error) {
	times := make(map[string]time.Duration, len(variants))
	joins := make(map[string]int, len(variants))
	for _, v := range variants {
		opts := v.Opts
		med, err := median(reps, func() error { return run(opts) })
		if err != nil {
			return nil, nil, err
		}
		times[v.Name] = med
		if lastStats != nil {
			joins[v.Name] = lastStats.SemiJoins
		}
	}
	return times, joins, nil
}

// FormatAblation renders variant timings side by side.
func FormatAblation(title string, rows []AblationRow, variants []string) string {
	var b strings.Builder
	b.WriteString(title + " [ms] (semi-joins)\n")
	fmt.Fprintf(&b, "%-6s", "Query")
	for _, v := range variants {
		fmt.Fprintf(&b, " %18s", v)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s", r.Query)
		for _, v := range variants {
			fmt.Fprintf(&b, " %12.2f (%3d)", ms(r.Variants[v]), r.SemiJoins[v])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package bench

import (
	"strings"
	"testing"

	"resultdb/internal/wire"
	"resultdb/internal/workload/star"
)

// smallEnv loads a tiny JOB environment shared by the harness tests.
func smallEnv(t *testing.T) *Env {
	t.Helper()
	env, err := NewJOBEnv(0.05)
	if err != nil {
		t.Fatal(err)
	}
	env.Reps = 1
	return env
}

func TestTable1ShapesHold(t *testing.T) {
	env := smallEnv(t)
	rows, err := env.Table1(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want the paper's 10 queries", len(rows))
	}
	for _, r := range rows {
		// RDB never exceeds RDBRP (it projects a subset of attributes).
		if r.RDB > r.RDBRP {
			t.Errorf("%s: RDB (%d) > RDBRP (%d)", r.Query, r.RDB, r.RDBRP)
		}
	}
	// The headline query 16b must compress strongly.
	for _, r := range rows {
		if r.Query == "16b" && r.RatioRDB() < 2 {
			t.Errorf("16b compression ratio = %.1f, expected > 2", r.RatioRDB())
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "16b") || !strings.Contains(out, "compression ratio") {
		t.Errorf("format output incomplete:\n%s", out)
	}
}

func TestFig7ShapesHold(t *testing.T) {
	cfg := star.Config{Dims: 3, DimRows: 10, PayloadLen: 20, Seed: 7}
	points, err := Fig7(cfg, []float64{0.2, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if !(p.ST >= p.RDBRP && p.RDBRP >= p.RDB) {
			t.Errorf("point %d: ST %d >= RDBRP %d >= RDB %d violated", i, p.ST, p.RDBRP, p.RDB)
		}
		if p.Redundancy() < 0 {
			t.Errorf("point %d: negative redundancy", i)
		}
	}
	// Sizes grow with selectivity; the ST-RDBRP gap widens (Figure 7).
	if points[0].ST >= points[2].ST {
		t.Error("ST size must grow with selectivity")
	}
	if points[0].Redundancy() >= points[2].Redundancy() {
		t.Error("redundancy gap must widen with selectivity")
	}
	if !strings.Contains(FormatFig7(points), "selectivity") {
		t.Error("format output incomplete")
	}
}

func TestFig8AndTable2(t *testing.T) {
	env := smallEnv(t)
	names := []string{"3c", "9c", "11c"}
	rows, err := env.Fig8(names)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Times) == 0 {
			t.Errorf("%s: no method produced a timing (errs: %v)", r.Query, r.Errs)
		}
		best, bestT := r.Best()
		if best == 0 || bestT <= 0 {
			t.Errorf("%s: Best() = %v, %v", r.Query, best, bestT)
		}
	}
	over, err := env.Table2(rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range over {
		if r.STTime <= 0 {
			t.Errorf("%s: zero ST time", r.Query)
		}
	}
	if !strings.Contains(FormatFig8(rows), "RM4") {
		t.Error("fig8 format incomplete")
	}
	if !strings.Contains(FormatTable2(over), "best-method wins") {
		t.Error("table2 format incomplete")
	}
}

func TestFig9(t *testing.T) {
	env := smallEnv(t)
	rows, err := env.Fig9([]string{"3c", "6a", "18c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.ST <= 0 || r.SemiJoin <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Query, r)
		}
		if r.Query == "6a" && (r.Stats == nil || !r.Stats.Cyclic) {
			t.Errorf("6a should report a cyclic join graph: %v", r.Stats)
		}
	}
	if !strings.Contains(FormatFig9(rows), "SemiJoinAlgo") {
		t.Error("fig9 format incomplete")
	}
}

func TestTable3(t *testing.T) {
	env := smallEnv(t)
	rows, err := env.Table3([]string{"9c", "16b"}, wire.TransferModel{Mbps: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Best == 0 {
			t.Errorf("%s: no best method", r.Query)
		}
		if r.STTotal() != r.STExec+r.STTransfer {
			t.Error("STTotal arithmetic")
		}
		if r.RMTotal() != r.RMExec+r.RMTransfer+r.PostJoin {
			t.Error("RMTotal arithmetic")
		}
	}
	// 16b is the high-redundancy query: its subdatabase must ship fewer
	// bytes, i.e. smaller transfer time.
	for _, r := range rows {
		if r.Query == "16b" && r.RMTransfer >= r.STTransfer {
			t.Errorf("16b: RM transfer %v >= ST transfer %v", r.RMTransfer, r.STTransfer)
		}
	}
	if !strings.Contains(FormatTable3(rows), "postjoin") {
		t.Error("table3 format incomplete")
	}
}

func TestAblations(t *testing.T) {
	env := smallEnv(t)
	rows, variants, err := env.AblationRoot([]string{"9c", "22c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 4 || len(rows) != 2 {
		t.Fatalf("root ablation shape: %d variants, %d rows", len(variants), len(rows))
	}
	for _, r := range rows {
		if r.SemiJoins["no-early-stop"] < r.SemiJoins["heuristic"] {
			t.Errorf("%s: early stop should never add semi-joins (%d vs %d)",
				r.Query, r.SemiJoins["heuristic"], r.SemiJoins["no-early-stop"])
		}
	}
	frows, fvars, err := env.AblationFold(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fvars) != 4 || len(frows) == 0 {
		t.Fatalf("fold ablation shape: %d variants, %d rows", len(fvars), len(frows))
	}
	out := FormatAblation("x", rows, variants)
	if !strings.Contains(out, "heuristic") {
		t.Error("ablation format incomplete")
	}
}

func TestAblationJoinOrder(t *testing.T) {
	env := smallEnv(t)
	rows, err := env.AblationJoinOrder([]string{"3c", "9c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Greedy <= 0 || r.DP <= 0 {
			t.Errorf("%s: non-positive timings %+v", r.Query, r)
		}
	}
	if env.DB.DPJoinOrder {
		t.Error("ablation must restore the default join order")
	}
	out := FormatJoinOrder(rows)
	if !strings.Contains(out, "DPsize") || !strings.Contains(out, "speedup") {
		t.Errorf("format incomplete:\n%s", out)
	}
}

func TestAblationBloomSmoke(t *testing.T) {
	env := smallEnv(t)
	rows, variants, err := env.AblationBloom([]string{"9c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 3 || len(rows) != 1 {
		t.Fatalf("bloom ablation shape: %d variants, %d rows", len(variants), len(rows))
	}
	// Every variant runs the same number of exact semi-joins (the bloom
	// pass is extra work on top, not a replacement).
	for _, r := range rows {
		if r.SemiJoins["exact"] != r.SemiJoins["bloom-1pct"] {
			t.Errorf("semi-join counts differ: %v", r.SemiJoins)
		}
	}
}

package bench

import (
	"fmt"
	"strings"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/rewrite"
	"resultdb/internal/sqlparse"
	"resultdb/internal/wire"
	"resultdb/internal/workload/job"
)

// EndToEndRow is one Table 3 column pair: single-table vs the best rewrite
// method, decomposed into query execution, (modeled) data transfer, and
// post-join time.
type EndToEndRow struct {
	Query string
	// Best is the rewrite method used for the RM side.
	Best rewrite.Method

	STExec     time.Duration
	STTransfer time.Duration

	RMExec     time.Duration
	RMTransfer time.Duration
	PostJoin   time.Duration
}

// STTotal is the single-table end-to-end time.
func (r EndToEndRow) STTotal() time.Duration { return r.STExec + r.STTransfer }

// RMTotal is the subdatabase end-to-end time.
func (r EndToEndRow) RMTotal() time.Duration { return r.RMExec + r.RMTransfer + r.PostJoin }

// Table3 measures end-to-end runtime for the given queries (nil = the
// paper's ten) under the transfer model (Section 6.4, default 100 Mbps).
// The RM side computes relationship-preserving subdatabases (RDBRP) so the
// client can reconstruct the single-table result; the post-join runs against
// the materialized reduced relations, like the paper's methodology.
func (e *Env) Table3(names []string, tm wire.TransferModel) ([]EndToEndRow, error) {
	if names == nil {
		names = job.Table1Queries
	}
	out := make([]EndToEndRow, 0, len(names))
	for _, name := range names {
		sel, err := e.Select(name)
		if err != nil {
			return nil, err
		}
		row := EndToEndRow{Query: name}

		// Single table: execution + transfer of the denormalized result.
		var stRes *db.Result
		row.STExec, err = median(e.Reps, func() error {
			stRes, err = e.DB.Query(sel)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s ST: %w", name, err)
		}
		row.STTransfer = tm.ResultDuration(stRes)

		// Best rewrite method on the RDBRP query.
		best, err := bestMethodFor(e, sel)
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s: %w", name, err)
		}
		row.Best = best
		plan, err := rewrite.Rewrite(sel, e.DB, best, rewrite.ModeRDBRP)
		if err != nil {
			return nil, err
		}
		var rmRes *db.Result
		row.RMExec, err = median(e.Reps, func() error {
			rmRes, err = rewrite.Run(e.DB, plan)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s %s: %w", name, best, err)
		}
		row.RMTransfer = tm.ResultDuration(rmRes)

		// Post-join: reconstruct the single-table result client-side from
		// the materialized reduced relations.
		row.PostJoin, err = median(e.Reps, func() error {
			_, err := e.DB.PostJoin(sel, rmRes)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: table3 %s post-join: %w", name, err)
		}
		out = append(out, row)
	}
	return out, nil
}

// bestMethodFor picks the fastest rewrite method by a quick single-rep race
// in RDBRP mode (the paper reports "the best rewrite method" per query).
func bestMethodFor(e *Env, sel *sqlparse.Select) (rewrite.Method, error) {
	var best rewrite.Method
	var bestT time.Duration
	for _, m := range rewrite.Methods {
		plan, err := rewrite.Rewrite(sel, e.DB, m, rewrite.ModeRDBRP)
		if err != nil {
			continue
		}
		t, err := median(1, func() error {
			_, err := rewrite.Run(e.DB, plan)
			return err
		})
		if err != nil {
			continue
		}
		if best == 0 || t < bestT {
			best, bestT = m, t
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("no rewrite method applies")
	}
	return best, nil
}

// FormatTable3 renders the breakdown like the paper's Table 3.
func FormatTable3(rows []EndToEndRow) string {
	var b strings.Builder
	b.WriteString("Table 3: end-to-end performance, Single Table (ST) vs best rewrite method (RM) [ms]\n")
	fmt.Fprintf(&b, "%-6s %4s | %10s %10s %10s | %10s %10s %10s %10s\n",
		"Query", "RM", "ST exec", "ST xfer", "ST total", "RM exec", "RM xfer", "postjoin", "RM total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %4s | %10.2f %10.2f %10.2f | %10.2f %10.2f %10.2f %10.2f\n",
			r.Query, r.Best,
			ms(r.STExec), ms(r.STTransfer), ms(r.STTotal()),
			ms(r.RMExec), ms(r.RMTransfer), ms(r.PostJoin), ms(r.RMTotal()))
	}
	return b.String()
}

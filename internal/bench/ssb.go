package bench

import (
	"fmt"
	"strings"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/sqlparse"
	"resultdb/internal/workload/ssb"
)

// SSBRow is one SSB flight's measurement: result sizes for the three query
// types and execution times for single-table vs the native algorithm.
type SSBRow struct {
	Query     string
	STBytes   int
	RDBRP     int
	RDB       int
	STTime    time.Duration
	RDBTime   time.Duration
	STRows    int
	Relations int
}

// Ratio is size(ST)/size(RDB).
func (r SSBRow) Ratio() float64 {
	if r.RDB == 0 {
		return 0
	}
	return float64(r.STBytes) / float64(r.RDB)
}

// SSB loads the Star Schema Benchmark workload and measures every flight.
// It extends the paper's synthetic Figure 7 star schema with the standard
// warehouse benchmark shape.
func SSB(cfg ssb.Config, reps int) ([]SSBRow, error) {
	d := db.New()
	if err := ssb.Load(d, cfg); err != nil {
		return nil, err
	}
	var out []SSBRow
	for _, q := range ssb.Queries() {
		sel, err := sqlparse.ParseSelect(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: ssb %s: %w", q.Name, err)
		}
		row := SSBRow{Query: q.Name}

		var st *db.Result
		row.STTime, err = median(reps, func() error {
			st, err = d.Query(sel)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: ssb %s ST: %w", q.Name, err)
		}
		row.STBytes = st.WireSize()
		row.STRows = st.First().NumRows()

		var rdb *db.Result
		row.RDBTime, err = median(reps, func() error {
			rdb, err = d.QueryResultDB(sel, db.ModeRDB)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench: ssb %s RDB: %w", q.Name, err)
		}
		row.RDB = rdb.WireSize()
		row.Relations = len(rdb.Sets)

		rdbrp, err := d.QueryResultDB(sel, db.ModeRDBRP)
		if err != nil {
			return nil, fmt.Errorf("bench: ssb %s RDBRP: %w", q.Name, err)
		}
		row.RDBRP = rdbrp.WireSize()
		out = append(out, row)
	}
	return out, nil
}

// FormatSSB renders the flight table.
func FormatSSB(rows []SSBRow) string {
	var b strings.Builder
	b.WriteString("SSB flights: sizes [KiB] and execution [ms], single table vs RESULTDB\n")
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s %8s %10s %10s %5s\n",
		"Query", "ST rows", "ST KiB", "RDBRP KiB", "RDB KiB", "ratio", "ST ms", "RDB ms", "rels")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %8d %10.2f %10.2f %10.2f %7.1fx %10.2f %10.2f %5d\n",
			r.Query, r.STRows, kib(r.STBytes), kib(r.RDBRP), kib(r.RDB), r.Ratio(),
			ms(r.STTime), ms(r.RDBTime), r.Relations)
	}
	return b.String()
}

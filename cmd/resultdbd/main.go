// Command resultdbd serves a database over TCP using the repository's wire
// protocol, for the distributed-database use case (Section 1.2, use case 3):
// a client can run SELECT RESULTDB remotely and receive the subdatabase
// instead of a denormalized single-table result, cutting transfer size.
//
// Usage:
//
//	resultdbd -addr :7483 -workload job -scale 0.25
//	resultdbd -cache -cache-budget 256MB -max-conns 64 -read-timeout 5m
//
// With -data-dir the server is durable: committed DML/DDL is write-ahead
// logged, checkpoints bound recovery time, and a restart on the same
// directory recovers the exact committed state (the -workload flag then only
// seeds the directory on its first ever start):
//
//	resultdbd -data-dir /var/lib/resultdb -fsync always -wal-segment 4MiB -checkpoint-every 1024
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resultdb/internal/db"
	"resultdb/internal/durable"
	"resultdb/internal/wal"
	"resultdb/internal/wire"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

func main() {
	var (
		addr         = flag.String("addr", ":7483", "listen address")
		workload     = flag.String("workload", "job", "preload a workload: job | star | hierarchy | none")
		scale        = flag.Float64("scale", 0.25, "JOB workload scale factor")
		cacheOn      = flag.Bool("cache", false, "enable the semantic result cache")
		cacheBudget  = flag.String("cache-budget", "64MiB", "result cache byte budget (e.g. 256MB, 1GiB)")
		maxConns     = flag.Int("max-conns", 0, "max concurrently served connections (0 = unlimited)")
		readTimeout  = flag.Duration("read-timeout", 0, "idle-connection read deadline (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
		wireVersion  = flag.String("wire-version", "v2", "highest wire payload version to negotiate: v1 | v2")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown bound: in-flight queries get this long to finish before their connections are force-closed (0 = wait indefinitely)")
		dataDir      = flag.String("data-dir", "", "durable data directory: WAL + checkpoints (empty = in-memory only)")
		fsyncPolicy  = flag.String("fsync", "always", "WAL fsync policy: always | interval | off")
		walSegment   = flag.String("wal-segment", "4MiB", "WAL segment rotation budget (e.g. 1MB, 16MiB)")
		ckptEvery    = flag.Int64("checkpoint-every", 1024, "checkpoint after this many committed batches (0 = only on drain)")
	)
	flag.Parse()

	bootstrap := func(d *db.Database) error {
		switch *workload {
		case "job":
			return job.Load(d, job.Config{Scale: *scale, Seed: 42})
		case "star":
			return star.Load(d, star.DefaultConfig())
		case "hierarchy":
			return hierarchy.Load(d, hierarchy.DefaultConfig())
		case "none", "":
			return nil
		default:
			return fmt.Errorf("unknown workload %q", *workload)
		}
	}

	var d *db.Database
	var mgr *durable.Manager
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resultdbd: -fsync:", err)
			os.Exit(1)
		}
		segBytes, err := db.ParseByteSize(*walSegment)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resultdbd: -wal-segment:", err)
			os.Exit(1)
		}
		mgr, d, err = durable.Open(durable.Options{
			Dir:             *dataDir,
			Fsync:           policy,
			SegmentBytes:    segBytes,
			CheckpointEvery: *ckptEvery,
		}, bootstrap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resultdbd:", err)
			os.Exit(1)
		}
		st := mgr.Stats()
		fmt.Printf("recovered %s to lsn %d (checkpoint lsn %d, %d wal records replayed, torn tail dropped: %v)\n",
			*dataDir, st.RecoveredLSN, st.CheckpointLSN, st.Replayed, st.TornTail)
	} else {
		// One config object carries every engine knob: defaults, then
		// environment overrides (RESULTDB_*), then flags.
		cfg := db.DefaultConfig().FromEnv()
		if *cacheOn {
			budget, perr := db.ParseByteSize(*cacheBudget)
			if perr != nil {
				fmt.Fprintln(os.Stderr, "resultdbd: -cache-budget:", perr)
				os.Exit(1)
			}
			cfg.CacheEnabled = true
			cfg.CacheBudget = budget
		}
		d = db.Open(cfg)
		if err := bootstrap(d); err != nil {
			fmt.Fprintln(os.Stderr, "resultdbd:", err)
			os.Exit(1)
		}
	}
	if *cacheOn && !d.CacheEnabled() {
		// Durable path: the database came from recovery, not db.Open; apply
		// the cache flags directly.
		budget, perr := db.ParseByteSize(*cacheBudget)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "resultdbd: -cache-budget:", perr)
			os.Exit(1)
		}
		d.EnableCache(budget)
	}

	srv := wire.NewServer(d)
	srv.MaxConns = *maxConns
	srv.ReadTimeout = *readTimeout
	srv.WriteTimeout = *writeTimeout
	switch *wireVersion {
	case "v1":
		srv.MaxVersion = wire.FormatV1
	case "v2", "":
		srv.MaxVersion = wire.FormatV2
	default:
		fmt.Fprintf(os.Stderr, "resultdbd: -wire-version: unknown version %q (want v1 or v2)\n", *wireVersion)
		os.Exit(1)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resultdbd:", err)
		os.Exit(1)
	}
	fmt.Printf("resultdbd listening on %s (workload=%s cache=%v wire=%s)\n", bound, *workload, d.CacheEnabled(), *wireVersion)

	// SIGINT/SIGTERM trigger a graceful drain: the listener closes (new
	// dials are refused), idle connections are kicked, and in-flight
	// queries get -drain-timeout to finish their responses.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("shutting down (draining %d active connections, timeout %v)\n", srv.ActiveConns(), *drainTimeout)
	srv.Shutdown(*drainTimeout)
	if mgr != nil {
		// Checkpoint on drain so the next start replays an empty (or tiny)
		// WAL, then release the log cleanly.
		if err := mgr.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "resultdbd: checkpoint on drain:", err)
		}
		if err := mgr.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "resultdbd: close:", err)
		}
		for _, line := range mgr.Stats().Trace().CompactLines() {
			fmt.Println(line)
		}
	}
	for _, line := range srv.Stats().Trace().CompactLines() {
		fmt.Println(line)
	}
}

// Command resultdbd serves a database over TCP using the repository's wire
// protocol, for the distributed-database use case (Section 1.2, use case 3):
// a client can run SELECT RESULTDB remotely and receive the subdatabase
// instead of a denormalized single-table result, cutting transfer size.
//
// Usage:
//
//	resultdbd -addr :7483 -workload job -scale 0.25
//	resultdbd -cache -cache-budget 256MB -max-conns 64 -read-timeout 5m
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"resultdb/internal/db"
	"resultdb/internal/wire"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

func main() {
	var (
		addr         = flag.String("addr", ":7483", "listen address")
		workload     = flag.String("workload", "job", "preload a workload: job | star | hierarchy | none")
		scale        = flag.Float64("scale", 0.25, "JOB workload scale factor")
		cacheOn      = flag.Bool("cache", false, "enable the semantic result cache")
		cacheBudget  = flag.String("cache-budget", "64MiB", "result cache byte budget (e.g. 256MB, 1GiB)")
		maxConns     = flag.Int("max-conns", 0, "max concurrently served connections (0 = unlimited)")
		readTimeout  = flag.Duration("read-timeout", 0, "idle-connection read deadline (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-response write deadline (0 = none)")
		wireVersion  = flag.String("wire-version", "v2", "highest wire payload version to negotiate: v1 | v2")
	)
	flag.Parse()

	d := db.New()
	if *cacheOn {
		budget, perr := db.ParseByteSize(*cacheBudget)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "resultdbd: -cache-budget:", perr)
			os.Exit(1)
		}
		d.EnableCache(budget)
	}
	var err error
	switch *workload {
	case "job":
		err = job.Load(d, job.Config{Scale: *scale, Seed: 42})
	case "star":
		err = star.Load(d, star.DefaultConfig())
	case "hierarchy":
		err = hierarchy.Load(d, hierarchy.DefaultConfig())
	case "none", "":
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "resultdbd:", err)
		os.Exit(1)
	}

	srv := wire.NewServer(d)
	srv.MaxConns = *maxConns
	srv.ReadTimeout = *readTimeout
	srv.WriteTimeout = *writeTimeout
	switch *wireVersion {
	case "v1":
		srv.MaxVersion = wire.FormatV1
	case "v2", "":
		srv.MaxVersion = wire.FormatV2
	default:
		fmt.Fprintf(os.Stderr, "resultdbd: -wire-version: unknown version %q (want v1 or v2)\n", *wireVersion)
		os.Exit(1)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resultdbd:", err)
		os.Exit(1)
	}
	fmt.Printf("resultdbd listening on %s (workload=%s cache=%v wire=%s)\n", bound, *workload, d.CacheEnabled(), *wireVersion)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}

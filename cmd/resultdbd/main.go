// Command resultdbd serves a database over TCP using the repository's wire
// protocol, for the distributed-database use case (Section 1.2, use case 3):
// a client can run SELECT RESULTDB remotely and receive the subdatabase
// instead of a denormalized single-table result, cutting transfer size.
//
// Usage:
//
//	resultdbd -addr :7483 -workload job -scale 0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"resultdb/internal/db"
	"resultdb/internal/wire"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

func main() {
	var (
		addr     = flag.String("addr", ":7483", "listen address")
		workload = flag.String("workload", "job", "preload a workload: job | star | hierarchy | none")
		scale    = flag.Float64("scale", 0.25, "JOB workload scale factor")
	)
	flag.Parse()

	d := db.New()
	var err error
	switch *workload {
	case "job":
		err = job.Load(d, job.Config{Scale: *scale, Seed: 42})
	case "star":
		err = star.Load(d, star.DefaultConfig())
	case "hierarchy":
		err = hierarchy.Load(d, hierarchy.DefaultConfig())
	case "none", "":
	default:
		err = fmt.Errorf("unknown workload %q", *workload)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "resultdbd:", err)
		os.Exit(1)
	}

	srv := wire.NewServer(d)
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resultdbd:", err)
		os.Exit(1)
	}
	fmt.Printf("resultdbd listening on %s (workload=%s)\n", bound, *workload)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}

// Command datagen materializes the synthetic workloads as CSV files (typed
// headers, \N NULLs) so they can be inspected, versioned, or loaded into
// other database systems for cross-checking.
//
// Usage:
//
//	datagen -workload job -scale 0.25 -out ./data
//	datagen -workload star -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"resultdb/internal/csvio"
	"resultdb/internal/db"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

func main() {
	var (
		workload = flag.String("workload", "job", "workload: job | star | hierarchy")
		scale    = flag.Float64("scale", 0.25, "JOB workload scale factor")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("out", "data", "output directory")
	)
	flag.Parse()
	if err := run(*workload, *scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(workload string, scale float64, seed int64, out string) error {
	d := db.New()
	var err error
	switch workload {
	case "job":
		err = job.Load(d, job.Config{Scale: scale, Seed: seed})
	case "star":
		cfg := star.DefaultConfig()
		cfg.Seed = seed
		err = star.Load(d, cfg)
	case "hierarchy":
		cfg := hierarchy.DefaultConfig()
		cfg.Seed = seed
		err = hierarchy.Load(d, cfg)
	default:
		err = fmt.Errorf("unknown workload %q", workload)
	}
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, name := range d.Catalog().Names() {
		t, err := d.Table(name)
		if err != nil {
			return err
		}
		path := filepath.Join(out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := csvio.Dump(t, f); err != nil {
			f.Close()
			return fmt.Errorf("dumping %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%-24s %8d rows -> %s\n", name, t.Len(), path)
	}
	return nil
}

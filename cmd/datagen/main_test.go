package main

import (
	"os"
	"path/filepath"
	"testing"

	"resultdb/internal/csvio"
	"resultdb/internal/db"
)

func TestDatagenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := run("hierarchy", 0, 3, dir); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"products.csv", "electronics.csv", "clothing.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	// Reload one table and sanity-check it.
	f, err := os.Open(filepath.Join(dir, "products.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d := db.New()
	n, err := csvio.Load(d, "products", f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Errorf("reloaded %d rows, want 1000", n)
	}
}

func TestDatagenWorkloads(t *testing.T) {
	if err := run("star", 0, 1, t.TempDir()); err != nil {
		t.Errorf("star: %v", err)
	}
	if err := run("job", 0.01, 1, t.TempDir()); err != nil {
		t.Errorf("job: %v", err)
	}
	if err := run("nope", 1, 1, t.TempDir()); err == nil {
		t.Error("unknown workload should fail")
	}
}

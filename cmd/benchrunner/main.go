// Command benchrunner regenerates the paper's evaluation artifacts (Tables
// 1-3, Figures 7-9) and the ablation studies against the synthetic
// workloads. Example:
//
//	go run ./cmd/benchrunner -exp table1
//	go run ./cmd/benchrunner -exp all -scale 0.5 -reps 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"resultdb/internal/bench"
	"resultdb/internal/db"
	"resultdb/internal/durable"
	"resultdb/internal/parallel"
	"resultdb/internal/sqlparse"
	"resultdb/internal/trace"
	"resultdb/internal/wal"
	"resultdb/internal/wire"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/ssb"
	"resultdb/internal/workload/star"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|fig7|fig8|table2|fig9|table3|ssb|ablation-root|ablation-fold|ablation-bloom|ablation-joinorder|all")
		scale     = flag.Float64("scale", 0.25, "JOB workload scale factor (1.0 = 10k titles / 80k cast rows)")
		reps      = flag.Int("reps", 5, "repetitions per measurement (median reported)")
		mbps      = flag.Float64("mbps", 100, "modeled data transfer rate in Mbps (Table 3)")
		queries   = flag.String("queries", "", "comma-separated JOB query names (default: experiment's own set)")
		par       = flag.Int("par", 0, "degree of intra-query parallelism (0 = auto via RESULTDB_PARALLELISM or GOMAXPROCS, 1 = serial)")
		traceFile = flag.String("trace", "", "write JSON execution traces of the selected RESULTDB queries to this file and exit")
		cacheRep  = flag.Bool("cache", false, "report cold vs warm timings with the semantic result cache and exit")
		vecRep    = flag.Bool("vec", false, "report row-path vs vectorized-path timings per JOB query and exit")
		statsRep  = flag.Bool("stats", false, "report heuristic vs cost-based planning timings per JOB query, write results/stats-bench.txt, and exit")
		wireRep   = flag.String("wire", "", "report per-query encoded payload size, encode time and modeled transfer time for the listed wire versions (comma list of v1,v2) and exit")
		durRep    = flag.Bool("durability", false, "report WAL ingest throughput across fsync policies and group-commit settings, plus recovery time vs WAL length, and exit")
		concRep   = flag.String("concurrent", "", "report reader latency under concurrent writers with R/W goroutines (e.g. -concurrent 8/2): MVCC snapshot reads vs an emulated coarse reader/writer lock, write results/mvcc-bench.txt, and exit")
	)
	flag.Parse()

	if *durRep {
		if err := durabilityReport(*reps); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *concRep != "" {
		readers, writers, err := parseRW(*concRep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner: -concurrent:", err)
			os.Exit(1)
		}
		if err := concurrentReport(*reps, readers, writers); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *scale, *reps, *mbps, *queries, *par, *traceFile, *cacheRep, *vecRep, *statsRep, *wireRep); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, reps int, mbps float64, queryList string, par int, traceFile string, cacheRep, vecRep, statsRep bool, wireRep string) error {
	var names []string
	if queryList != "" {
		names = strings.Split(queryList, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}

	needsJOB := exp != "fig7" && exp != "ssb" || traceFile != "" || cacheRep || vecRep || statsRep || wireRep != ""
	var env *bench.Env
	if needsJOB {
		start := time.Now()
		var err error
		env, err = bench.NewJOBEnv(scale)
		if err != nil {
			return err
		}
		env.Reps = reps
		env.DB.CoreOptions.Parallelism = par
		fmt.Printf("loaded JOB workload (scale %.2f) in %v, parallelism %d\n\n",
			scale, time.Since(start).Round(time.Millisecond), parallel.Degree(par))
	}

	if traceFile != "" {
		return writeTraces(env, names, traceFile)
	}
	if cacheRep {
		return cacheReport(env, names)
	}
	if vecRep {
		return vecReport(env, names, scale, par)
	}
	if statsRep {
		return statsReport(env, names, scale, par)
	}
	if wireRep != "" {
		return wireReport(env, names, scale, par, mbps, wireRep)
	}

	want := func(name string) bool { return exp == name || exp == "all" }

	if want("table1") {
		rows, err := env.Table1(names)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable1(rows))
	}
	if want("ssb") {
		rows, err := bench.SSB(ssb.DefaultConfig(), reps)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatSSB(rows))
	}
	if want("fig7") {
		points, err := bench.Fig7(star.DefaultConfig(), nil)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFig7(points))
	}
	var fig8 []bench.RMTiming
	if want("fig8") || want("table2") {
		var err error
		fig8, err = env.Fig8(names)
		if err != nil {
			return err
		}
	}
	if want("fig8") {
		fmt.Println(bench.FormatFig8(fig8))
	}
	if want("table2") {
		rows, err := env.Table2(fig8)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable2(rows))
	}
	if want("fig9") {
		rows, err := env.Fig9(names)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatFig9(rows))
	}
	if want("table3") {
		rows, err := env.Table3(names, wire.TransferModel{Mbps: mbps})
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatTable3(rows))
	}
	if want("ablation-root") {
		rows, variants, err := env.AblationRoot(names)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation("Ablation: root node strategy", rows, variants))
	}
	if want("ablation-fold") {
		rows, variants, err := env.AblationFold(names)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation("Ablation: fold strategy (cyclic queries)", rows, variants))
	}
	if want("ablation-joinorder") {
		rows, err := env.AblationJoinOrder(names)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatJoinOrder(rows))
	}
	if want("ablation-bloom") {
		rows, variants, err := env.AblationBloom(names)
		if err != nil {
			return err
		}
		fmt.Println(bench.FormatAblation("Ablation: Bloom prefilter", rows, variants))
	}
	return nil
}

// cacheReport runs each selected JOB query as SELECT RESULTDB twice against
// the semantic result cache — cold (cache just cleared) and warm (best
// repetition served from the cache) — and prints the per-query speedup.
func cacheReport(env *bench.Env, names []string) error {
	qs := job.Queries()
	if len(names) > 0 {
		var picked []job.Query
		for _, name := range names {
			q, err := job.QueryByName(name)
			if err != nil {
				return err
			}
			picked = append(picked, q)
		}
		qs = picked
	}
	env.DB.EnableCache(db.DefaultCacheBudget)
	reps := env.Reps
	if reps < 1 {
		reps = 1
	}
	fmt.Println("Semantic result cache: cold vs warm (SELECT RESULTDB)")
	fmt.Printf("%-6s %12s %12s %10s\n", "query", "cold", "warm", "speedup")
	for _, q := range qs {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		env.DB.ClearCache()
		start := time.Now()
		if _, err := env.DB.Exec(sql); err != nil {
			return fmt.Errorf("query %s: %w", q.Name, err)
		}
		cold := time.Since(start)
		var warm time.Duration
		for r := 0; r < reps; r++ {
			start = time.Now()
			if _, err := env.DB.Exec(sql); err != nil {
				return fmt.Errorf("query %s: %w", q.Name, err)
			}
			if e := time.Since(start); r == 0 || e < warm {
				warm = e
			}
		}
		speedup := float64(cold) / float64(warm)
		fmt.Printf("%-6s %10.3fms %10.4fms %9.1fx\n",
			q.Name, float64(cold.Nanoseconds())/1e6, float64(warm.Nanoseconds())/1e6, speedup)
	}
	st := env.DB.CacheStats()
	fmt.Printf("\ncache stats: %d hits, %d misses, %d entries, %d bytes in budget %d\n",
		st.Hits, st.Misses, st.Entries, st.Bytes, st.Budget)
	return nil
}

// vecReport times each selected JOB query as SELECT RESULTDB on the
// row-at-a-time path and on the vectorized (colstore) path — median of reps
// on the same loaded database — and prints the per-query speedup plus the
// geometric-mean speedup over all queries. Results are bit-identical across
// the two paths; only time differs.
func vecReport(env *bench.Env, names []string, scale float64, par int) error {
	qs := job.Queries()
	if len(names) > 0 {
		var picked []job.Query
		for _, name := range names {
			q, err := job.QueryByName(name)
			if err != nil {
				return err
			}
			picked = append(picked, q)
		}
		qs = picked
	}
	reps := env.Reps
	if reps < 1 {
		reps = 1
	}
	defer func() { env.DB.CoreOptions.Vectorized = true }()

	median := func(sql string, vec bool) (time.Duration, error) {
		env.DB.CoreOptions.Vectorized = vec
		times := make([]time.Duration, reps)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if _, err := env.DB.Exec(sql); err != nil {
				return 0, err
			}
			times[r] = time.Since(start)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2], nil
	}

	fmt.Printf("Vectorized execution: row path vs colstore path (SELECT RESULTDB, JOB scale %.2f, par %d, median of %d)\n",
		scale, parallel.Degree(par), reps)
	fmt.Printf("%-6s %12s %12s %10s\n", "query", "row", "vectorized", "speedup")
	logSum, n := 0.0, 0
	for _, q := range qs {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		row, err := median(sql, false)
		if err != nil {
			return fmt.Errorf("query %s (row path): %w", q.Name, err)
		}
		vec, err := median(sql, true)
		if err != nil {
			return fmt.Errorf("query %s (vectorized): %w", q.Name, err)
		}
		speedup := float64(row) / float64(vec)
		logSum += math.Log(speedup)
		n++
		fmt.Printf("%-6s %10.3fms %10.3fms %9.2fx\n",
			q.Name, float64(row.Nanoseconds())/1e6, float64(vec.Nanoseconds())/1e6, speedup)
	}
	if n > 0 {
		fmt.Printf("\ngeomean speedup: %.2fx over %d queries\n", math.Exp(logSum/float64(n)), n)
	}
	return nil
}

// statsReport times each selected JOB query as SELECT RESULTDB under the
// heuristic planner and under the cost-based planner (statistics pre-built
// via ANALYZE, so the sweep measures planning quality, not stats builds) —
// median of reps on the same loaded database — and prints the per-query
// speedup plus the geometric-mean speedup. The report also lands in
// results/stats-bench.txt. Results are byte-identical across the two
// planners; only the plan, and therefore time, differs.
func statsReport(env *bench.Env, names []string, scale float64, par int) error {
	qs := job.Queries()
	if len(names) > 0 {
		var picked []job.Query
		for _, name := range names {
			q, err := job.QueryByName(name)
			if err != nil {
				return err
			}
			picked = append(picked, q)
		}
		qs = picked
	}
	reps := env.Reps
	if reps < 1 {
		reps = 1
	}
	defer func() { env.DB.CoreOptions.CostBased = false }()
	if _, err := env.DB.Exec("ANALYZE"); err != nil {
		return err
	}

	batched := func(sql string, cost bool, batch int) (time.Duration, error) {
		env.DB.CoreOptions.CostBased = cost
		runtime.GC() // start every sample from the same heap state
		start := time.Now()
		for i := 0; i < batch; i++ {
			if _, err := env.DB.Exec(sql); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(batch), nil
	}
	// Repetitions interleave the two planners after one untimed warmup each,
	// alternating which planner runs first in each repetition. Each timed
	// sample executes the query in a batch sized (from the warmup) to take
	// at least ~4ms, because individual sub-millisecond executions are
	// dominated by scheduler and allocator noise. The reported speedup is
	// the median of the per-repetition ratios: the two samples of one
	// repetition are adjacent in time, so clock-frequency drift and
	// periodic background work cancel within each pair instead of biasing
	// whichever planner happened to occupy a slow slot. (A best-of-N
	// estimator over unpaired samples still showed ±10% run-to-run spread
	// on sub-250µs queries with byte-identical code on both sides.)
	paired := func(sql string) (heur, cost time.Duration, speedup float64, err error) {
		var w time.Duration
		if w, err = batched(sql, false, 1); err != nil {
			return
		}
		if _, err = batched(sql, true, 1); err != nil {
			return
		}
		batch := 1
		if w > 0 && w < 4*time.Millisecond {
			batch = int(4*time.Millisecond/w) + 1
		}
		h := make([]time.Duration, reps)
		c := make([]time.Duration, reps)
		ratios := make([]float64, reps)
		for r := 0; r < reps; r++ {
			if r%2 == 0 {
				if h[r], err = batched(sql, false, batch); err != nil {
					return
				}
				if c[r], err = batched(sql, true, batch); err != nil {
					return
				}
			} else {
				if c[r], err = batched(sql, true, batch); err != nil {
					return
				}
				if h[r], err = batched(sql, false, batch); err != nil {
					return
				}
			}
			ratios[r] = float64(h[r]) / float64(c[r])
		}
		sort.Slice(h, func(i, j int) bool { return h[i] < h[j] })
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		sort.Float64s(ratios)
		return h[reps/2], c[reps/2], ratios[reps/2], nil
	}

	var report strings.Builder
	out := io.MultiWriter(os.Stdout, &report)
	fmt.Fprintf(out, "Cost-based planning: heuristic vs statistics-driven (SELECT RESULTDB, JOB scale %.2f, par %d, median of %d paired >=4ms batches; speedup = median per-pair ratio)\n",
		scale, parallel.Degree(par), reps)
	fmt.Fprintf(out, "%-6s %12s %12s %10s\n", "query", "heuristic", "cost-based", "speedup")
	logSum, n := 0.0, 0
	for _, q := range qs {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		heur, cost, speedup, err := paired(sql)
		if err != nil {
			return fmt.Errorf("query %s: %w", q.Name, err)
		}
		logSum += math.Log(speedup)
		n++
		fmt.Fprintf(out, "%-6s %10.3fms %10.3fms %9.2fx\n",
			q.Name, float64(heur.Nanoseconds())/1e6, float64(cost.Nanoseconds())/1e6, speedup)
	}
	if n > 0 {
		fmt.Fprintf(out, "\ngeomean speedup: %.2fx over %d queries\n", math.Exp(logSum/float64(n)), n)
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	if err := os.WriteFile("results/stats-bench.txt", []byte(report.String()), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote results/stats-bench.txt")
	return nil
}

// wireReport executes each selected JOB query as SELECT RESULTDB once, then
// encodes the result at every requested wire format version, reporting the
// encoded payload size, the median encode time, and the modeled transfer
// time at the configured DTR — plus, when both versions are requested, the
// per-query and geometric-mean v1/v2 compression ratio. The decoded results
// are byte-identical across versions (the differential gate asserts it);
// only bytes and time differ.
func wireReport(env *bench.Env, names []string, scale float64, par int, mbps float64, versionList string) error {
	var versions []int
	for _, v := range strings.Split(versionList, ",") {
		switch strings.TrimSpace(v) {
		case "v1":
			versions = append(versions, wire.FormatV1)
		case "v2":
			versions = append(versions, wire.FormatV2)
		default:
			return fmt.Errorf("-wire: unknown version %q (want a comma list of v1,v2)", v)
		}
	}
	qs := job.Queries()
	if len(names) > 0 {
		var picked []job.Query
		for _, name := range names {
			q, err := job.QueryByName(name)
			if err != nil {
				return err
			}
			picked = append(picked, q)
		}
		qs = picked
	}
	reps := env.Reps
	if reps < 1 {
		reps = 1
	}
	model := wire.TransferModel{Mbps: mbps}
	vname := func(v int) string {
		if v == wire.FormatV2 {
			return "v2"
		}
		return "v1"
	}

	fmt.Printf("Wire format sweep: SELECT RESULTDB payloads (JOB scale %.2f, par %d, %.0f Mbps DTR, median of %d encodes)\n",
		scale, parallel.Degree(par), mbps, reps)
	fmt.Printf("%-6s", "query")
	for _, v := range versions {
		fmt.Printf(" %12s %9s %9s", vname(v)+" bytes", "enc ms", "xfer ms")
	}
	both := len(versions) == 2
	if both {
		fmt.Printf(" %8s", "ratio")
	}
	fmt.Println()

	logSum, n := 0.0, 0
	for _, q := range qs {
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		res, err := env.DB.Exec(sql)
		if err != nil {
			return fmt.Errorf("query %s: %w", q.Name, err)
		}
		fmt.Printf("%-6s", q.Name)
		bytesByVersion := make(map[int]int)
		for _, v := range versions {
			opts := wire.EncodeOptions{Version: v, Parallelism: par}
			times := make([]time.Duration, reps)
			var size int
			for r := 0; r < reps; r++ {
				start := time.Now()
				payload := wire.EncodeResultOptions(res, opts)
				times[r] = time.Since(start)
				size = len(payload)
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			enc := times[len(times)/2]
			bytesByVersion[v] = size
			fmt.Printf(" %12d %9.3f %9.3f", size,
				float64(enc.Nanoseconds())/1e6, float64(model.Duration(size).Nanoseconds())/1e6)
		}
		if both {
			ratio := float64(bytesByVersion[versions[0]]) / float64(bytesByVersion[versions[1]])
			if versions[0] == wire.FormatV2 {
				ratio = 1 / ratio
			}
			logSum += math.Log(ratio)
			n++
			fmt.Printf(" %7.2fx", ratio)
		}
		fmt.Println()
	}
	if both && n > 0 {
		fmt.Printf("\ngeomean compression ratio (v1/v2 bytes): %.2fx over %d queries\n", math.Exp(logSum/float64(n)), n)
	}
	return nil
}

// durabilityReport measures the write-ahead log two ways. First, ingest
// throughput: concurrent writers insert into a durable database on a real
// temporary directory under every fsync policy, with group commit on and
// off, reporting statements/sec and how many fsyncs the run actually paid
// (group commit's whole point is the gap between sync requests and fsyncs).
// Second, recovery time: WALs of growing length are replayed from an
// in-memory filesystem (so the numbers isolate replay CPU, not disk reads).
func durabilityReport(reps int) error {
	if reps < 1 {
		reps = 1
	}
	const (
		writers          = 8
		insertsPerWriter = 100
	)
	total := writers * insertsPerWriter
	bootstrap := func(d *db.Database) error {
		_, err := d.Exec("CREATE TABLE ingest (id INTEGER PRIMARY KEY, payload TEXT)")
		return err
	}

	fmt.Printf("WAL ingest throughput: %d writers x %d inserts, best of %d runs\n", writers, insertsPerWriter, reps)
	fmt.Printf("%-10s %-6s %12s %10s %14s %14s\n", "fsync", "group", "stmts/s", "fsyncs", "sync reqs", "group shared")
	for _, policy := range []wal.SyncPolicy{wal.SyncAlways, wal.SyncInterval, wal.SyncOff} {
		for _, group := range []bool{true, false} {
			var best time.Duration
			var bestStats wal.Stats
			for r := 0; r < reps; r++ {
				dir, err := os.MkdirTemp("", "walbench")
				if err != nil {
					return err
				}
				mgr, d, err := durable.Open(durable.Options{
					Dir:           dir,
					Fsync:         policy,
					NoGroupCommit: !group,
				}, bootstrap)
				if err != nil {
					os.RemoveAll(dir)
					return err
				}
				start := time.Now()
				var wg sync.WaitGroup
				errs := make([]error, writers)
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < insertsPerWriter; i++ {
							id := w*insertsPerWriter + i
							sql := fmt.Sprintf("INSERT INTO ingest VALUES (%d, 'row-%d')", id, id)
							if _, err := d.Exec(sql); err != nil {
								errs[w] = err
								return
							}
						}
					}(w)
				}
				wg.Wait()
				elapsed := time.Since(start)
				st := mgr.Stats().Wal
				mgr.Close()
				os.RemoveAll(dir)
				for _, err := range errs {
					if err != nil {
						return err
					}
				}
				if r == 0 || elapsed < best {
					best, bestStats = elapsed, st
				}
			}
			groupLabel := "on"
			if !group {
				groupLabel = "off"
			}
			fmt.Printf("%-10s %-6s %12.0f %10d %14d %14d\n",
				policy, groupLabel, float64(total)/best.Seconds(),
				bestStats.Fsyncs, bestStats.SyncRequests, bestStats.GroupShared)
		}
	}

	fmt.Printf("\nRecovery time vs WAL length (in-memory fs, no checkpoint, best of %d runs)\n", reps)
	fmt.Printf("%-10s %12s %12s %14s\n", "records", "wal bytes", "recover", "records/s")
	for _, n := range []int{256, 1024, 4096} {
		fsys := wal.NewMemFS()
		mgr, d, err := durable.Open(durable.Options{FS: fsys, Fsync: wal.SyncOff}, bootstrap)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if _, err := d.Exec(fmt.Sprintf("INSERT INTO ingest VALUES (%d, 'row-%d')", i, i)); err != nil {
				return err
			}
		}
		walBytes := mgr.Stats().Wal.Bytes
		if err := mgr.Close(); err != nil {
			return err
		}
		var best time.Duration
		for r := 0; r < reps; r++ {
			img := fsys.Clone()
			start := time.Now()
			mgr2, d2, err := durable.Open(durable.Options{FS: img, Fsync: wal.SyncOff}, bootstrap)
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			if got := int64(mgr2.Stats().Replayed); got != int64(n) {
				return fmt.Errorf("recovery replayed %d records, want %d", got, n)
			}
			tbl, err := d2.Table("ingest")
			if err != nil {
				return err
			}
			if tbl.Len() != n {
				return fmt.Errorf("recovered %d rows, want %d", tbl.Len(), n)
			}
			mgr2.Close()
			if r == 0 || elapsed < best {
				best = elapsed
			}
		}
		fmt.Printf("%-10d %12d %12s %14.0f\n", n, walBytes, best.Round(time.Microsecond), float64(n)/best.Seconds())
	}
	return nil
}

// parseRW parses the -concurrent "R/W" goroutine spec (e.g. "8/2").
func parseRW(spec string) (readers, writers int, err error) {
	r, w, ok := strings.Cut(spec, "/")
	if ok {
		readers, err = strconv.Atoi(strings.TrimSpace(r))
		if err == nil {
			writers, err = strconv.Atoi(strings.TrimSpace(w))
		}
	}
	if !ok || err != nil || readers < 1 || writers < 1 {
		return 0, 0, fmt.Errorf("want READERS/WRITERS (e.g. 8/2), got %q", spec)
	}
	return readers, writers, nil
}

// concurrentReport measures reader latency under concurrent write load two
// ways on identically seeded databases:
//
//   - mvcc: readers query through per-goroutine sessions while writers
//     commit multi-row INSERT batches — the engine's real path, where a
//     reader pins an immutable snapshot and never waits for a writer.
//   - rwlock: the same traffic under an emulated coarse reader/writer lock
//     at the bench level (readers RLock around each query, writers Lock
//     around each batch) — the design MVCC replaced, where every reader
//     stalls for the full duration of any in-flight batch.
//
// The load is paced (writers pause between batches, readers between reads)
// so the system is not CPU-saturated and the measured tail is lock blocking,
// not run-queue starvation; both modes execute pre-parsed statements so the
// baseline's lock hold is the batch's real apply cost, not parsing.
//
// Reported per mode: reads completed, writer batches committed, and the
// p50/p99 reader latency; plus the p99 improvement ratio. The report also
// lands in results/mvcc-bench.txt.
func concurrentReport(reps, readers, writers int) error {
	if reps < 1 {
		reps = 1
	}
	const (
		seedRows    = 20000
		batchRows   = 20000
		window      = 1500 * time.Millisecond
		writerPause = 25 * time.Millisecond
		readerPause = time.Millisecond
	)
	build := func() (*db.Database, error) {
		d := db.Open(db.DefaultConfig())
		if _, err := d.Exec("CREATE TABLE r (id INTEGER PRIMARY KEY, val INTEGER)"); err != nil {
			return nil, err
		}
		if _, err := d.Exec("CREATE TABLE w (id INTEGER PRIMARY KEY, payload TEXT)"); err != nil {
			return nil, err
		}
		var b strings.Builder
		for i := 0; i < seedRows; i++ {
			if i%1000 == 0 {
				if b.Len() > 0 {
					if _, err := d.Exec(b.String()); err != nil {
						return nil, err
					}
				}
				b.Reset()
				b.WriteString("INSERT INTO r VALUES ")
			} else {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d)", i, i%997)
		}
		if _, err := d.Exec(b.String()); err != nil {
			return nil, err
		}
		return d, nil
	}
	// One pre-rendered, pre-parsed batch statement reused every commit, and a
	// pre-parsed read: both modes execute the same ASTs, so the only varying
	// cost is the concurrency regime itself.
	var batch strings.Builder
	batch.WriteString("INSERT INTO w VALUES ")
	for i := 0; i < batchRows; i++ {
		if i > 0 {
			batch.WriteString(", ")
		}
		fmt.Fprintf(&batch, "(%d, 'payload-%d')", i, i)
	}
	batchSt, err := sqlparse.Parse(batch.String())
	if err != nil {
		return err
	}
	readSt, err := sqlparse.Parse("SELECT r.id, r.val FROM r AS r WHERE r.val < 100")
	if err != nil {
		return err
	}

	percentile := func(times []time.Duration, q float64) time.Duration {
		if len(times) == 0 {
			return 0
		}
		return times[int(q*float64(len(times)-1))]
	}

	type outcome struct {
		reads   int
		batches int64
		p50     time.Duration
		p99     time.Duration
	}
	measure := func(locked bool) (outcome, error) {
		var best outcome
		for rep := 0; rep < reps; rep++ {
			d, err := build()
			if err != nil {
				return outcome{}, err
			}
			var lock sync.RWMutex // bench-level emulation only (locked mode)
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errs := make([]error, readers+writers)
			var batches int64
			var batchMu sync.Mutex
			lats := make([][]time.Duration, readers)
			for i := 0; i < readers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sess := d.NewSession()
					for {
						select {
						case <-stop:
							return
						default:
						}
						start := time.Now()
						if locked {
							lock.RLock()
						}
						_, err := sess.ExecStatement(readSt)
						if locked {
							lock.RUnlock()
						}
						if err != nil {
							errs[i] = err
							return
						}
						lats[i] = append(lats[i], time.Since(start))
						time.Sleep(readerPause)
					}
				}(i)
			}
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					sess := d.NewSession()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if locked {
							lock.Lock()
						}
						_, err := sess.ExecStatement(batchSt)
						if locked {
							lock.Unlock()
						}
						if err != nil {
							errs[readers+w] = err
							return
						}
						batchMu.Lock()
						batches++
						batchMu.Unlock()
						time.Sleep(writerPause)
					}
				}(w)
			}
			time.Sleep(window)
			close(stop)
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return outcome{}, err
				}
			}
			var all []time.Duration
			for _, l := range lats {
				all = append(all, l...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			o := outcome{
				reads:   len(all),
				batches: batches,
				p50:     percentile(all, 0.50),
				p99:     percentile(all, 0.99),
			}
			if rep == 0 || o.p99 < best.p99 {
				best = o
			}
		}
		return best, nil
	}

	mvcc, err := measure(false)
	if err != nil {
		return err
	}
	rw, err := measure(true)
	if err != nil {
		return err
	}

	var report strings.Builder
	out := io.MultiWriter(os.Stdout, &report)
	fmt.Fprintf(out, "Concurrent reader latency: %d readers x %d writers (%d-row batches), %v windows, best of %d\n",
		readers, writers, batchRows, window, reps)
	fmt.Fprintf(out, "%-8s %10s %10s %12s %12s\n", "mode", "reads", "batches", "p50", "p99")
	msf := func(d time.Duration) string { return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6) }
	fmt.Fprintf(out, "%-8s %10d %10d %12s %12s\n", "mvcc", mvcc.reads, mvcc.batches, msf(mvcc.p50), msf(mvcc.p99))
	fmt.Fprintf(out, "%-8s %10d %10d %12s %12s\n", "rwlock", rw.reads, rw.batches, msf(rw.p50), msf(rw.p99))
	if mvcc.p99 > 0 {
		fmt.Fprintf(out, "\np99 reader latency improvement (rwlock/mvcc): %.1fx\n", float64(rw.p99)/float64(mvcc.p99))
	}
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	if err := os.WriteFile("results/mvcc-bench.txt", []byte(report.String()), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote results/mvcc-bench.txt")
	return nil
}

// writeTraces executes each selected JOB query as SELECT RESULTDB with the
// tracer enabled and writes the structured traces (one JSON array) to path.
func writeTraces(env *bench.Env, names []string, path string) error {
	qs := job.Queries()
	if len(names) > 0 {
		var picked []job.Query
		for _, name := range names {
			q, err := job.QueryByName(name)
			if err != nil {
				return err
			}
			picked = append(picked, q)
		}
		qs = picked
	}
	var traces []*trace.Trace
	for _, q := range qs {
		sel, err := sqlparse.ParseSelect(q.SQL)
		if err != nil {
			return fmt.Errorf("query %s: %w", q.Name, err)
		}
		sel.ResultDB = true
		_, tr, err := env.DB.QueryWithTrace(sel)
		if err != nil {
			return fmt.Errorf("query %s: %w", q.Name, err)
		}
		tr.Query = q.Name + ": " + tr.Query
		traces = append(traces, tr)
		fmt.Printf("traced %-4s %3d spans  %6.2fms\n", q.Name, len(tr.Spans), float64(tr.WallNS)/1e6)
	}
	data, err := json.MarshalIndent(traces, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d traces to %s\n", len(traces), path)
	return nil
}

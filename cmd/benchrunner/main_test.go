package main

import (
	"os"
	"testing"
)

// TestRunEachExperiment smoke-tests the runner end to end at a tiny scale:
// every experiment id must execute and print without error.
func TestRunEachExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is not -short")
	}
	for _, exp := range []string{
		"table1", "fig7", "fig8", "table2", "fig9", "table3", "ssb",
		"ablation-root", "ablation-fold", "ablation-bloom", "ablation-joinorder",
	} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			queries := "3c,9c"
			if exp == "ablation-fold" {
				queries = "6a"
			}
			if err := run(exp, 0.02, 1, 100, queries, 0, "", false, false, false, ""); err != nil {
				t.Fatalf("run(%s): %v", exp, err)
			}
		})
	}
}

func TestRunRejectsUnknownQueries(t *testing.T) {
	if err := run("table1", 0.02, 1, 100, "zz", 0, "", false, false, false, ""); err == nil {
		t.Fatal("unknown query should error")
	}
}

// TestRunCacheReport smoke-tests the -cache cold/warm report.
func TestRunCacheReport(t *testing.T) {
	if testing.Short() {
		t.Skip("cache report smoke test is not -short")
	}
	if err := run("all", 0.02, 1, 100, "3c,9c", 0, "", true, false, false, ""); err != nil {
		t.Fatalf("cache report: %v", err)
	}
}

// TestRunWireReport smoke-tests the -wire payload sweep.
func TestRunWireReport(t *testing.T) {
	if testing.Short() {
		t.Skip("wire report smoke test is not -short")
	}
	if err := run("all", 0.02, 1, 100, "3c,9c", 0, "", false, false, false, "v1,v2"); err != nil {
		t.Fatalf("wire report: %v", err)
	}
	if err := run("all", 0.02, 1, 100, "3c", 0, "", false, false, false, "v3"); err == nil {
		t.Fatal("unknown wire version should error")
	}
}

// TestRunStatsReport smoke-tests the -stats heuristic-vs-cost-based report,
// including the results/stats-bench.txt artifact.
func TestRunStatsReport(t *testing.T) {
	if testing.Short() {
		t.Skip("stats report smoke test is not -short")
	}
	t.Chdir(t.TempDir())
	if err := run("all", 0.02, 1, 100, "3c,9c", 0, "", false, false, true, ""); err != nil {
		t.Fatalf("stats report: %v", err)
	}
	if _, err := os.Stat("results/stats-bench.txt"); err != nil {
		t.Fatalf("stats report artifact: %v", err)
	}
}

// TestRunVecReport smoke-tests the -vec row-vs-vectorized report.
func TestRunVecReport(t *testing.T) {
	if testing.Short() {
		t.Skip("vec report smoke test is not -short")
	}
	if err := run("all", 0.02, 1, 100, "3c,9c", 0, "", false, true, false, ""); err != nil {
		t.Fatalf("vec report: %v", err)
	}
}

// Command resultdb is an interactive SQL shell (and one-shot executor) for
// the reproduction's main-memory DBMS, with the paper's SELECT RESULTDB
// extension available out of the box.
//
// Usage:
//
//	resultdb                      # interactive shell on an empty database
//	resultdb -workload job        # preload the JOB-like IMDb workload
//	resultdb -e "SELECT ..."      # execute one statement and exit
//	resultdb -f script.sql        # run a SQL script, then open the shell
//	resultdb -connect :7483       # remote shell against a resultdbd server
//
// Shell meta-commands: \d (list tables), \d NAME (describe), \timing
// (toggle timings), \trace (toggle per-query JSON execution traces),
// \strategy semijoin|decompose, \stats [on|off|TABLE] (cost-based planning /
// show a table's optimizer statistics), \cache [on|off|clear|SIZE] (semantic result
// cache), \wire [v1|v2|off] (show each result's encoded wire size at a
// payload version), \save FILE and \open FILE (binary database snapshots),
// \retry [off|ATTEMPTS [BACKOFF]] (remote retry policy, -connect only),
// \checkpoint and \wal (durability controls, -data-dir only), \q (quit).
//
// With -data-dir DIR the session is durable: every committed statement is
// write-ahead logged under DIR and a later `resultdb -data-dir DIR` recovers
// the exact committed state. -workload/-csv/-f then only seed the directory
// on its first ever start.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"resultdb/internal/csvio"
	"resultdb/internal/db"
	"resultdb/internal/durable"
	"resultdb/internal/snapshot"
	"resultdb/internal/wal"
	"resultdb/internal/sqlparse"
	"resultdb/internal/wire"
	"resultdb/internal/workload/hierarchy"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/star"
)

func main() {
	var (
		workload  = flag.String("workload", "", "preload a workload: job | star | hierarchy")
		scale     = flag.Float64("scale", 0.25, "JOB workload scale factor")
		execSQL   = flag.String("e", "", "execute one statement and exit")
		file      = flag.String("f", "", "execute a SQL script file before starting the shell")
		csvDir    = flag.String("csv", "", "load every *.csv in the directory as a table before starting")
		traceExec = flag.Bool("trace", false, "emit a JSON execution trace after every SELECT")
		connect   = flag.String("connect", "", "execute against a resultdbd server at host:port instead of the embedded database (RESULTDB_RETRIES / RESULTDB_RETRY_BACKOFF configure reconnect-and-retry; \\retry adjusts it live)")
		dataDir   = flag.String("data-dir", "", "durable data directory: WAL + checkpoints (empty = in-memory only)")
		fsyncMode = flag.String("fsync", "always", "WAL fsync policy with -data-dir: always | interval | off")
	)
	flag.Parse()

	if *connect != "" {
		if *workload != "" || *csvDir != "" {
			fmt.Fprintln(os.Stderr, "resultdb: -workload and -csv load into the embedded database and cannot be combined with -connect")
			os.Exit(1)
		}
		remote, err := wire.Dial(*connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resultdb:", err)
			os.Exit(1)
		}
		defer remote.Close()
		s := &shell{remote: remote, out: os.Stdout}
		if *file != "" {
			script, err := os.ReadFile(*file)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resultdb:", err)
				os.Exit(1)
			}
			if err := s.execute(string(script)); err != nil {
				fmt.Fprintln(os.Stderr, "resultdb:", err)
				os.Exit(1)
			}
		}
		if *execSQL != "" {
			if err := s.execute(*execSQL); err != nil {
				fmt.Fprintln(os.Stderr, "resultdb:", err)
				os.Exit(1)
			}
			return
		}
		s.repl(os.Stdin)
		return
	}

	seed := func(d *db.Database) error {
		if err := preload(d, *workload, *scale); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := loadCSVDir(d, *csvDir); err != nil {
				return err
			}
		}
		if *file != "" {
			script, err := os.ReadFile(*file)
			if err != nil {
				return err
			}
			if _, err := d.ExecScript(string(script)); err != nil {
				return err
			}
		}
		return nil
	}

	var d *db.Database
	var mgr *durable.Manager
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resultdb: -fsync:", err)
			os.Exit(1)
		}
		mgr, d, err = durable.Open(durable.Options{Dir: *dataDir, Fsync: policy}, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "resultdb:", err)
			os.Exit(1)
		}
		defer func() {
			if err := mgr.Checkpoint(); err != nil {
				fmt.Fprintln(os.Stderr, "resultdb: checkpoint:", err)
			}
			if err := mgr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "resultdb: close:", err)
			}
		}()
	} else {
		d = db.Open(db.DefaultConfig().FromEnv())
		if err := seed(d); err != nil {
			fmt.Fprintln(os.Stderr, "resultdb:", err)
			os.Exit(1)
		}
	}
	s := &shell{sess: d.NewSession(), mgr: mgr, out: os.Stdout, trace: *traceExec}
	if *execSQL != "" {
		if err := s.execute(*execSQL); err != nil {
			fmt.Fprintln(os.Stderr, "resultdb:", err)
			os.Exit(1)
		}
		return
	}
	s.repl(os.Stdin)
}

// loadCSVDir loads every *.csv file in dir as a table named after the file.
func loadCSVDir(d *db.Database, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(e.Name(), ".csv")
		n, err := csvio.Load(d, name, f)
		f.Close()
		if err != nil {
			return fmt.Errorf("loading %s: %w", e.Name(), err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s (%d rows)\n", name, n)
	}
	return nil
}

func preload(d *db.Database, workload string, scale float64) error {
	switch workload {
	case "":
		return nil
	case "job":
		return job.Load(d, job.Config{Scale: scale, Seed: 42})
	case "star":
		return star.Load(d, star.DefaultConfig())
	case "hierarchy":
		return hierarchy.Load(d, hierarchy.DefaultConfig())
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
}

type shell struct {
	// sess is the shell's database session: every statement sees one
	// consistent snapshot, the shell's own writes are visible immediately,
	// and \strategy / \stats toggle session-local options.
	sess *db.Session
	// mgr, when set, makes the session durable (-data-dir) and enables the
	// \checkpoint and \wal meta commands.
	mgr *durable.Manager
	// remote, when set, routes every statement to a resultdbd server over
	// the wire protocol; db is nil and database-local meta commands are
	// unavailable.
	remote *wire.Client
	out    *os.File
	timing bool
	trace  bool
	// wireVer, when "v1" or "v2", prints each result's encoded payload size
	// at that wire format version (and the compression ratio for "v2").
	wireVer string
}

func (s *shell) repl(in *os.File) {
	fmt.Fprintln(s.out, "resultdb shell — SELECT RESULTDB supported; \\q to quit, \\d to list tables")
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "resultdb> "
	for {
		fmt.Fprint(s.out, prompt)
		if !scanner.Scan() {
			fmt.Fprintln(s.out)
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if s.meta(trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "      ...> "
			continue
		}
		stmt := buf.String()
		buf.Reset()
		prompt = "resultdb> "
		if err := s.execute(stmt); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		}
	}
}

// meta handles backslash commands; returns true to quit.
func (s *shell) meta(cmd string) bool {
	fields := strings.Fields(cmd)
	if s.remote != nil {
		switch fields[0] {
		case "\\q", "\\timing", "\\retry":
		default:
			fmt.Fprintln(s.out, "only \\q, \\timing and \\retry are available over -connect; everything else runs in the embedded shell")
			return false
		}
	}
	switch fields[0] {
	case "\\q":
		return true
	case "\\timing":
		s.timing = !s.timing
		fmt.Fprintf(s.out, "timing %v\n", s.timing)
	case "\\retry":
		return s.metaRetry(fields)
	case "\\trace":
		s.trace = !s.trace
		fmt.Fprintf(s.out, "trace %v\n", s.trace)
	case "\\checkpoint":
		if s.mgr == nil {
			fmt.Fprintln(s.out, "\\checkpoint needs a durable session; start the shell with -data-dir")
			return false
		}
		if err := s.mgr.Checkpoint(); err != nil {
			fmt.Fprintln(s.out, "error:", err)
			return false
		}
		st := s.mgr.Stats()
		fmt.Fprintf(s.out, "checkpointed at lsn %d (%d checkpoints, %d bytes total, %d wal segments pruned)\n",
			st.CheckpointLSN, st.Checkpoints, st.CheckpointBytes, st.Wal.Pruned)
	case "\\wal":
		if s.mgr == nil {
			fmt.Fprintln(s.out, "\\wal needs a durable session; start the shell with -data-dir")
			return false
		}
		st := s.mgr.Stats()
		fmt.Fprintf(s.out, "wal: %d records (%d bytes) across %d segments, %d fsyncs for %d sync requests (%d group-shared), %d rotations, %d segments pruned\n",
			st.Wal.Records, st.Wal.Bytes, st.Wal.Segments, st.Wal.Fsyncs, st.Wal.SyncRequests, st.Wal.GroupShared, st.Wal.Rotations, st.Wal.Pruned)
		fmt.Fprintf(s.out, "recovery: opened at lsn %d (checkpoint lsn %d, %d replayed, %d skipped, torn tail dropped: %v)\n",
			st.RecoveredLSN, st.CheckpointLSN, st.Replayed, st.ReplaySkipped, st.TornTail)
	case "\\cache":
		d := s.sess.DB()
		if len(fields) == 2 {
			switch fields[1] {
			case "on":
				d.EnableCache(db.DefaultCacheBudget)
			case "off":
				d.DisableCache()
			case "clear":
				d.ClearCache()
				fmt.Fprintln(s.out, "cache cleared")
			default:
				// \cache 256MB — enable with an explicit budget.
				if budget, err := db.ParseByteSize(fields[1]); err == nil {
					d.EnableCache(budget)
				} else {
					fmt.Fprintln(s.out, "usage: \\cache [on|off|clear|SIZE]")
					return false
				}
			}
		}
		if d.CacheEnabled() {
			st := d.CacheStats()
			fmt.Fprintf(s.out, "cache on: %d entries, %d/%d bytes, %d hits, %d misses, %d invalidations, %d evictions, %d collapsed\n",
				st.Entries, st.Bytes, st.Budget, st.Hits, st.Misses, st.Invalidations, st.Evictions, st.Collapsed)
		} else {
			fmt.Fprintln(s.out, "cache off")
		}
	case "\\wire":
		if len(fields) == 2 {
			switch fields[1] {
			case "v1", "v2":
				s.wireVer = fields[1]
			case "off":
				s.wireVer = ""
			default:
				fmt.Fprintln(s.out, "usage: \\wire [v1|v2|off]")
				return false
			}
		}
		if s.wireVer == "" {
			fmt.Fprintln(s.out, "wire size display off")
		} else {
			fmt.Fprintf(s.out, "wire size display %s\n", s.wireVer)
		}
	case "\\stats":
		if len(fields) == 2 {
			switch fields[1] {
			case "on":
				s.sess.CoreOptions.CostBased = true
			case "off":
				s.sess.CoreOptions.CostBased = false
			default:
				// \stats TABLE — print the table's optimizer statistics.
				st := s.sess.DB().TableStats(fields[1])
				if st == nil {
					fmt.Fprintf(s.out, "error: table %q does not exist\n", fields[1])
					return false
				}
				fmt.Fprint(s.out, st.String())
				return false
			}
		}
		if s.sess.CoreOptions.CostBased {
			fmt.Fprintln(s.out, "cost-based planning on (statistics-driven root, semi-join order, bloom, range prefilter)")
		} else {
			fmt.Fprintln(s.out, "cost-based planning off (paper heuristics)")
		}
	case "\\strategy":
		if len(fields) == 2 {
			switch fields[1] {
			case "semijoin":
				s.sess.Strategy = db.StrategySemiJoin
			case "decompose":
				s.sess.Strategy = db.StrategyDecompose
			default:
				fmt.Fprintln(s.out, "usage: \\strategy semijoin|decompose")
			}
		}
		fmt.Fprintf(s.out, "resultdb strategy %v\n", s.sess.Strategy)
	case "\\save":
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: \\save FILE")
			return false
		}
		if err := s.saveSnapshot(fields[1]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		} else {
			fmt.Fprintln(s.out, "saved", fields[1])
		}
	case "\\open":
		if s.mgr != nil {
			fmt.Fprintln(s.out, "\\open would detach the session from its -data-dir WAL; start a plain shell to browse snapshots")
			return false
		}
		if len(fields) != 2 {
			fmt.Fprintln(s.out, "usage: \\open FILE")
			return false
		}
		if err := s.openSnapshot(fields[1]); err != nil {
			fmt.Fprintln(s.out, "error:", err)
		} else {
			fmt.Fprintln(s.out, "opened", fields[1])
		}
	case "\\d":
		// One snapshot for the whole listing: names and row counts are
		// mutually consistent even while other connections commit.
		snap := s.sess.Snapshot()
		if len(fields) == 2 {
			t, err := snap.Table(fields[1])
			if err != nil {
				fmt.Fprintln(s.out, "error:", err)
				return false
			}
			fmt.Fprintln(s.out, t.Def.String())
			return false
		}
		for _, name := range snap.TableNames() {
			t, err := snap.Table(name)
			if err != nil {
				continue
			}
			fmt.Fprintf(s.out, "%-24s %8d rows\n", name, t.Len())
		}
	default:
		fmt.Fprintln(s.out, "unknown command; try \\d, \\timing, \\trace, \\strategy, \\stats, \\cache, \\retry, \\checkpoint, \\wal, \\q")
	}
	return false
}

// metaRetry shows or reconfigures the remote connection's retry policy:
// \retry (show), \retry off, \retry N [BACKOFF] (N attempts, optional base
// backoff like 100ms). Always returns false (never quits).
func (s *shell) metaRetry(fields []string) bool {
	if s.remote == nil {
		fmt.Fprintln(s.out, "\\retry needs a remote connection; start the shell with -connect")
		return false
	}
	if len(fields) >= 2 {
		if fields[1] == "off" {
			s.remote.SetRetry(wire.RetryPolicy{})
		} else {
			var attempts int
			if _, err := fmt.Sscanf(fields[1], "%d", &attempts); err != nil || attempts < 1 {
				fmt.Fprintln(s.out, "usage: \\retry [off|ATTEMPTS [BACKOFF]]")
				return false
			}
			p := wire.DefaultRetryPolicy()
			p.MaxAttempts = attempts
			if len(fields) >= 3 {
				d, err := time.ParseDuration(fields[2])
				if err != nil || d <= 0 {
					fmt.Fprintln(s.out, "usage: \\retry [off|ATTEMPTS [BACKOFF]]")
					return false
				}
				p.BaseBackoff = d
			}
			s.remote.SetRetry(p)
		}
	}
	p := s.remote.RetryPolicy()
	if p.MaxAttempts <= 1 {
		fmt.Fprintln(s.out, "retry off (single attempt)")
	} else {
		fmt.Fprintf(s.out, "retry: %d attempts, backoff %v..%v, attempt timeout %v, query timeout %v (%d reconnects so far)\n",
			p.MaxAttempts, p.BaseBackoff, p.MaxBackoff, p.AttemptTimeout, p.QueryTimeout, s.remote.Reconnects())
	}
	return false
}

// saveSnapshot writes the session's current view of the database to path —
// one consistent MVCC snapshot, even while other connections commit.
func (s *shell) saveSnapshot(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snapshot.Save(s.sess.Snapshot(), f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openSnapshot replaces the session database with the snapshot at path.
func (s *shell) openSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := snapshot.Load(f)
	if err != nil {
		return err
	}
	s.sess = d.NewSession()
	return nil
}

func (s *shell) execute(sql string) error {
	start := time.Now()
	stmts, err := sqlparse.ParseScript(sql)
	if err != nil {
		return err
	}
	if s.remote != nil {
		// Remote mode: ship each statement's text to the server; retry and
		// reconnect live inside the wire client, so a transient failure here
		// is already the post-retry verdict (the error text carries the
		// classification and attempt count).
		for _, st := range stmts {
			res, err := s.remote.Exec(st.SQL())
			if err != nil {
				return fmt.Errorf("statement %q: %w", st.SQL(), err)
			}
			s.printResult(res)
		}
		if s.timing {
			fmt.Fprintf(s.out, "Time: %.3f ms\n", float64(time.Since(start).Microseconds())/1000)
		}
		return nil
	}
	for _, st := range stmts {
		if sel, ok := st.(*sqlparse.Select); ok && s.trace {
			res, tr, err := s.sess.QueryWithTrace(sel)
			if err != nil {
				return fmt.Errorf("statement %q: %w", st.SQL(), err)
			}
			s.printResult(res)
			if data, jerr := tr.JSON(); jerr == nil {
				fmt.Fprintln(s.out, string(data))
			}
			continue
		}
		res, err := s.sess.ExecStatement(st)
		if err != nil {
			return fmt.Errorf("statement %q: %w", st.SQL(), err)
		}
		s.printResult(res)
	}
	if s.timing {
		fmt.Fprintf(s.out, "Time: %.3f ms\n", float64(time.Since(start).Microseconds())/1000)
	}
	return nil
}

const maxDisplayRows = 50

func (s *shell) printResult(res *db.Result) {
	if len(res.Sets) == 0 {
		if res.Affected > 0 {
			fmt.Fprintf(s.out, "OK, %d rows affected\n", res.Affected)
		} else {
			fmt.Fprintln(s.out, "OK")
		}
		return
	}
	for _, set := range res.Sets {
		if len(res.Sets) > 1 {
			fmt.Fprintf(s.out, "-- relation %s (%d rows, %d bytes)\n", set.Name, set.NumRows(), set.WireSize())
		}
		fmt.Fprintln(s.out, strings.Join(set.Columns, " | "))
		fmt.Fprintln(s.out, strings.Repeat("-", len(strings.Join(set.Columns, " | "))))
		for i, row := range set.Rows {
			if i >= maxDisplayRows {
				fmt.Fprintf(s.out, "... (%d more rows)\n", len(set.Rows)-maxDisplayRows)
				break
			}
			fmt.Fprintln(s.out, row.String())
		}
		fmt.Fprintf(s.out, "(%d rows)\n", set.NumRows())
	}
	if res.Stats != nil {
		fmt.Fprintf(s.out, "-- %s\n", res.Stats)
	}
	if s.wireVer != "" {
		par := s.sess.CoreOptions.Parallelism
		v1 := len(wire.EncodeResultOptions(res, wire.EncodeOptions{Version: wire.FormatV1, Parallelism: par}))
		if s.wireVer == "v1" {
			fmt.Fprintf(s.out, "-- wire v1: %d bytes\n", v1)
		} else {
			v2 := len(wire.EncodeResultOptions(res, wire.EncodeOptions{Version: wire.FormatV2, Parallelism: par}))
			fmt.Fprintf(s.out, "-- wire v2: %d bytes (v1: %d, %.2fx)\n", v2, v1, float64(v1)/float64(v2))
		}
	}
}

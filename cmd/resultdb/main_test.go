package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resultdb/internal/db"
)

func testShell(t *testing.T) (*shell, *os.File, func() string) {
	t.Helper()
	d := db.New()
	if _, err := d.ExecScript(`
		CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
		INSERT INTO t VALUES (1, 'a'), (2, 'b');
	`); err != nil {
		t.Fatal(err)
	}
	out, err := os.CreateTemp(t.TempDir(), "shell-out")
	if err != nil {
		t.Fatal(err)
	}
	s := &shell{sess: d.NewSession(), out: out}
	return s, out, func() string {
		data, err := os.ReadFile(out.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
}

func TestShellExecuteSelect(t *testing.T) {
	s, _, output := testShell(t)
	if err := s.execute("SELECT t.name FROM t AS t ORDER BY t.name;"); err != nil {
		t.Fatal(err)
	}
	got := output()
	if !strings.Contains(got, "a\nb") || !strings.Contains(got, "(2 rows)") {
		t.Errorf("output = %q", got)
	}
}

func TestShellExecuteResultDBAndStats(t *testing.T) {
	s, _, output := testShell(t)
	s.timing = true
	if err := s.execute("SELECT RESULTDB t.name FROM t AS t WHERE t.id = 1;"); err != nil {
		t.Fatal(err)
	}
	got := output()
	if !strings.Contains(got, "Time:") {
		t.Errorf("timing missing: %q", got)
	}
}

func TestShellMetaCommands(t *testing.T) {
	s, _, output := testShell(t)
	if s.meta(`\d`) {
		t.Error("\\d should not quit")
	}
	if s.meta(`\d t`) {
		t.Error("\\d t should not quit")
	}
	if s.meta(`\timing`) {
		t.Error("\\timing should not quit")
	}
	if s.meta(`\strategy decompose`) {
		t.Error("\\strategy should not quit")
	}
	if s.sess.Strategy != db.StrategyDecompose {
		t.Error("strategy not switched")
	}
	s.meta(`\strategy semijoin`)
	if s.sess.Strategy != db.StrategySemiJoin {
		t.Error("strategy not switched back")
	}
	s.meta(`\nope`)
	if !s.meta(`\q`) {
		t.Error("\\q must quit")
	}
	got := output()
	for _, want := range []string{"t ", "t(id INTEGER, name TEXT)", "timing true", "unknown command"} {
		if !strings.Contains(got, want) {
			t.Errorf("meta output missing %q in %q", want, got)
		}
	}
}

func TestShellReplScript(t *testing.T) {
	s, _, output := testShell(t)
	in, err := os.CreateTemp(t.TempDir(), "shell-in")
	if err != nil {
		t.Fatal(err)
	}
	script := "SELECT t.id FROM t AS t\nWHERE t.id = 2;\nSELECT broken;\n\\q\n"
	if _, err := in.WriteString(script); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	s.repl(in)
	got := output()
	if !strings.Contains(got, "(1 rows)") {
		t.Errorf("multi-line statement failed: %q", got)
	}
	if !strings.Contains(got, "error:") {
		t.Errorf("error not reported: %q", got)
	}
}

func TestPreloadAndCSV(t *testing.T) {
	d := db.New()
	if err := preload(d, "hierarchy", 0); err != nil {
		t.Fatal(err)
	}
	if err := preload(db.New(), "bogus", 0); err == nil {
		t.Error("bogus workload should fail")
	}
	// CSV dir loading.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.csv"), []byte("id:INTEGER\n7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := db.New()
	if err := loadCSVDir(d2, dir); err != nil {
		t.Fatal(err)
	}
	res, err := d2.QuerySQL("SELECT x.id FROM x AS x")
	if err != nil || res.First().NumRows() != 1 {
		t.Errorf("csv table not loaded: %v %v", res, err)
	}
}

func TestShellSnapshotSaveOpen(t *testing.T) {
	s, _, output := testShell(t)
	path := filepath.Join(t.TempDir(), "db.snap")
	if s.meta(`\save ` + path) {
		t.Fatal("\\save should not quit")
	}
	// Mutate, then reopen the snapshot: the mutation must be gone.
	if err := s.execute("INSERT INTO t VALUES (3, 'c');"); err != nil {
		t.Fatal(err)
	}
	if s.meta(`\open ` + path) {
		t.Fatal("\\open should not quit")
	}
	if err := s.execute("SELECT COUNT(*) FROM t AS t;"); err != nil {
		t.Fatal(err)
	}
	got := output()
	if !strings.Contains(got, "saved") || !strings.Contains(got, "opened") {
		t.Errorf("snapshot output = %q", got)
	}
	if !strings.Contains(got, "\n2\n") {
		t.Errorf("reopened database should have 2 rows: %q", got)
	}
	// Usage errors.
	s.meta(`\save`)
	s.meta(`\open`)
	s.meta(`\open /nonexistent/path`)
	if !strings.Contains(output(), "usage") {
		t.Error("usage message missing")
	}
}

// Package resultdb_test hosts the top-level benchmark suite: one testing.B
// benchmark per table and figure of the paper's evaluation (Section 6), plus
// micro-benchmarks of the core primitives. Run everything with
//
//	go test -bench=. -benchmem
//
// The printed paper-style artifacts come from cmd/benchrunner; these benches
// provide stable, comparable timings for the same code paths.
package resultdb_test

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"resultdb/internal/bench"
	"resultdb/internal/core"
	"resultdb/internal/db"
	"resultdb/internal/engine"
	"resultdb/internal/rewrite"
	"resultdb/internal/sqlparse"
	"resultdb/internal/trace"
	"resultdb/internal/wire"
	"resultdb/internal/workload/job"
	"resultdb/internal/workload/ssb"
	"resultdb/internal/workload/star"
)

// benchScale keeps the full benchmark suite in the tens-of-seconds range.
const benchScale = 0.1

var (
	envOnce sync.Once
	env     *bench.Env
	envErr  error
)

func jobEnv(b *testing.B) *bench.Env {
	b.Helper()
	envOnce.Do(func() {
		env, envErr = bench.NewJOBEnv(benchScale)
		if env != nil {
			env.Reps = 1
		}
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// BenchmarkTable1ResultSizes regenerates Table 1: result-set sizes and
// compression ratios for ST/RDBRP/RDB on the paper's ten JOB queries.
func BenchmarkTable1ResultSizes(b *testing.B) {
	e := jobEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := e.Table1(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				if r.Query == "16b" {
					b.ReportMetric(r.RatioRDB(), "compression16b")
				}
			}
		}
	}
}

// BenchmarkFig7StarSchema regenerates Figure 7: star-schema result sizes
// over dimension-filter selectivity.
func BenchmarkFig7StarSchema(b *testing.B) {
	cfg := star.Config{Dims: 3, DimRows: 15, PayloadLen: 40, Seed: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := bench.Fig7(cfg, []float64{0.2, 0.4, 0.6, 0.8, 1.0})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := points[len(points)-1]
			b.ReportMetric(float64(last.Redundancy())/1024, "redundancyKiB")
		}
	}
}

// BenchmarkFig8RewriteMethods regenerates Figure 8 on a representative
// query subset (one per family: selective, star, high-redundancy,
// single-output, cyclic).
func BenchmarkFig8RewriteMethods(b *testing.B) {
	e := jobEnv(b)
	names := []string{"3c", "9c", "11c", "16b", "21a"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Fig8(names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8PerMethod times each rewrite method on the star-join 9c.
func BenchmarkFig8PerMethod(b *testing.B) {
	e := jobEnv(b)
	sel, err := e.Select("9c")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range rewrite.Methods {
		b.Run(m.String(), func(b *testing.B) {
			plan, err := rewrite.Rewrite(sel, e.DB, m, rewrite.ModeRDB)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rewrite.Run(e.DB, plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Overhead regenerates Table 2 (best rewrite vs single
// table) on the same subset as Figure 8.
func BenchmarkTable2Overhead(b *testing.B) {
	e := jobEnv(b)
	names := []string{"3c", "9c", "11c", "16b", "21a"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig8, err := e.Fig8(names)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Table2(fig8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9SemiJoin regenerates Figure 9: native RESULTDB-SEMIJOIN vs
// Single Table + Decompose.
func BenchmarkFig9SemiJoin(b *testing.B) {
	e := jobEnv(b)
	names := []string{"3c", "9c", "16b", "21a", "29a"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Fig9(names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3EndToEnd regenerates Table 3: execution + 100 Mbps
// transfer + post-join for ST vs the best rewrite.
func BenchmarkTable3EndToEnd(b *testing.B) {
	e := jobEnv(b)
	names := []string{"9c", "16b", "33c"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Table3(names, wire.DefaultTransfer); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRoot exercises the Root Node Enumeration ablation.
func BenchmarkAblationRoot(b *testing.B) {
	e := jobEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.AblationRoot([]string{"9c", "22c"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFold exercises the Tree Folding Enumeration ablation on
// the cyclic templates.
func BenchmarkAblationFold(b *testing.B) {
	e := jobEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.AblationFold([]string{"14a", "23a"}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the primitives behind the experiments ---

// BenchmarkSemiJoinReduce16b isolates the reduction phase of Algorithm 4 on
// the heaviest acyclic query.
func BenchmarkSemiJoinReduce16b(b *testing.B) {
	e := jobEnv(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, e.DB)
	if err != nil {
		b.Fatal(err)
	}
	ex := &engine.Executor{Src: e.DB}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels, err := ex.BaseRelations(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := core.SemiJoinReduce(spec, rels, nil, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleTable16b is the matching single-table baseline.
func BenchmarkSingleTable16b(b *testing.B) {
	e := jobEnv(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.DB.Query(sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecompose16b isolates the Decompose operator (the paper's
// "negligible overhead" claim in Figure 9's zoom-in).
func BenchmarkDecompose16b(b *testing.B) {
	e := jobEnv(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, e.DB)
	if err != nil {
		b.Fatal(err)
	}
	ex := &engine.Executor{Src: e.DB}
	joined, err := ex.RunSPJ(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompose(joined, spec.OutputRels()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- morsel-parallelism sweeps (serial vs parallel on identical inputs) ---

var (
	parEnvOnce sync.Once
	parEnv     *bench.Env
	parEnvErr  error
)

// jobEnvLarge loads the JOB workload at full scale so the morsel chunking
// (parallel.Threshold rows per chunk) actually engages; the regular suite's
// benchScale would mostly take the serial fast path.
func jobEnvLarge(b *testing.B) *bench.Env {
	b.Helper()
	parEnvOnce.Do(func() {
		parEnv, parEnvErr = bench.NewJOBEnv(1.0)
		if parEnv != nil {
			parEnv.Reps = 1
		}
	})
	if parEnvErr != nil {
		b.Fatal(parEnvErr)
	}
	return parEnv
}

// parDegrees is the sweep: serial, 2 workers, and all cores.
func parDegrees() []int {
	ds := []int{1, 2}
	if g := runtime.GOMAXPROCS(0); g > 2 {
		ds = append(ds, g)
	}
	return ds
}

// BenchmarkParallelJoin16b sweeps the degree of parallelism over the
// single-table plan (hash joins + filters) of the heaviest acyclic query.
// Results are bit-identical across sub-benchmarks; only the timing changes.
func BenchmarkParallelJoin16b(b *testing.B) {
	e := jobEnvLarge(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, e.DB)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range parDegrees() {
		b.Run(fmt.Sprintf("par=%d", p), func(b *testing.B) {
			ex := &engine.Executor{Src: e.DB, Parallelism: p}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.RunSPJ(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTracerOverhead16b measures the cost of the observability layer on
// the heaviest acyclic query's single-table plan: "off" threads a nil tracer
// through every operator (the production default — the nil fast path must be
// free), "on" records a full span tree per run. verify.sh compares the two;
// the structural guarantee that the disabled path allocates nothing is
// asserted separately by TestNilTracerCostsNothing in internal/trace.
func BenchmarkTracerOverhead16b(b *testing.B) {
	e := jobEnvLarge(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, e.DB)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			ex := &engine.Executor{Src: e.DB, Parallelism: 1}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "on" {
					ex.Tracer = trace.New("16b")
				}
				if _, err := ex.RunSPJ(spec); err != nil {
					b.Fatal(err)
				}
				if mode == "on" {
					ex.Tracer.Finish()
				}
			}
		})
	}
}

// BenchmarkParallelReduce16b sweeps the degree of parallelism over the
// RESULTDB-SEMIJOIN reduction (semi-join probes, Bloom prefilter, Decompose).
func BenchmarkParallelReduce16b(b *testing.B) {
	e := jobEnvLarge(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, e.DB)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range parDegrees() {
		b.Run(fmt.Sprintf("par=%d", p), func(b *testing.B) {
			ex := &engine.Executor{Src: e.DB, Parallelism: p}
			opts := core.DefaultOptions()
			opts.Parallelism = p
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rels, err := ex.BaseRelations(spec)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := core.SemiJoinReduce(spec, rels, nil, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVectorizedJoin16b compares the row-at-a-time and vectorized
// (colstore) executions of the heaviest acyclic query's single-table plan
// (hash joins + filters) at serial parallelism. Results are bit-identical
// across sub-benchmarks; only the timing changes.
func BenchmarkVectorizedJoin16b(b *testing.B) {
	e := jobEnvLarge(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, e.DB)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"row", "vec"} {
		b.Run(mode, func(b *testing.B) {
			ex := &engine.Executor{Src: e.DB, Parallelism: 1, Vectorized: mode == "vec"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.RunSPJ(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVectorizedReduce16b compares the row-at-a-time and vectorized
// executions of the RESULTDB-SEMIJOIN reduction (semi-join probes, Bloom
// prefilter, Decompose) at serial parallelism.
func BenchmarkVectorizedReduce16b(b *testing.B) {
	e := jobEnvLarge(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	spec, err := engine.AnalyzeSPJ(sel, e.DB)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"row", "vec"} {
		b.Run(mode, func(b *testing.B) {
			vec := mode == "vec"
			ex := &engine.Executor{Src: e.DB, Parallelism: 1, Vectorized: vec}
			opts := core.DefaultOptions()
			opts.Parallelism = 1
			opts.Vectorized = vec
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rels, err := ex.BaseRelations(spec)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := core.SemiJoinReduce(spec, rels, nil, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParse measures the SQL front end on the largest template.
func BenchmarkParse(b *testing.B) {
	q, err := job.QueryByName("22c")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.ParseSelect(q.SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncode measures result serialization on a subdatabase result.
func BenchmarkWireEncode(b *testing.B) {
	e := jobEnv(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.DB.QueryResultDB(sel, db.ModeRDBRP)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		n = len(wire.EncodeResult(res))
	}
	b.ReportMetric(float64(n), "bytes")
}

// BenchmarkPostJoin measures the client-side post-join on 16b's RDBRP
// subdatabase (Table 3's last component).
func BenchmarkPostJoin(b *testing.B) {
	e := jobEnv(b)
	sel, err := e.Select("16b")
	if err != nil {
		b.Fatal(err)
	}
	res, err := e.DB.QueryResultDB(sel, db.ModeRDBRP)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.DB.PostJoin(sel, res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSSBFlights measures the Star Schema Benchmark extension: all 13
// flights, single-table vs RESULTDB (sizes and times).
func BenchmarkSSBFlights(b *testing.B) {
	cfg := ssb.Config{Scale: 0.3, Seed: 77}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.SSB(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var best float64
			for _, r := range rows {
				if r.Ratio() > best {
					best = r.Ratio()
				}
			}
			b.ReportMetric(best, "bestCompression")
		}
	}
}

// BenchmarkCacheHitJOB measures the semantic result cache on JOB RESULTDB
// queries: "cold" clears the cache every iteration (full execution + fill),
// "warm" serves every iteration from the cache. The cold/warm ratio is the
// cache's payoff; the acceptance bar is >= 10x on at least one query
// (results/cache-bench.txt records a sweep).
func BenchmarkCacheHitJOB(b *testing.B) {
	d := db.New()
	if err := job.Load(d, job.Config{Scale: benchScale, Seed: 42}); err != nil {
		b.Fatal(err)
	}
	d.EnableCache(db.DefaultCacheBudget)
	for _, name := range []string{"3c", "9c", "16b"} {
		q, err := job.QueryByName(name)
		if err != nil {
			b.Fatal(err)
		}
		sql := "SELECT RESULTDB" + strings.TrimPrefix(strings.TrimSpace(q.SQL), "SELECT")
		b.Run(name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.ClearCache()
				if _, err := d.Exec(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/warm", func(b *testing.B) {
			if _, err := d.Exec(sql); err != nil { // prime
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Exec(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

module resultdb

go 1.22

// Provenance: the paper's Section 5 observation that ResultDB queries are
// multi-tuple derivation-set queries (Cui et al.'s view lineage).
//
// Take any SPJ query, restrict its output to one tuple by adding filters,
// and the RESULTDB result of the restricted query is exactly that tuple's
// derivation set: every base tuple that contributed to producing it.
package main

import (
	"fmt"
	"log"
	"strings"

	"resultdb/internal/client"
	"resultdb/internal/db"
	"resultdb/internal/workload/job"
)

func main() {
	d := db.New()
	if err := job.Load(d, job.Config{Scale: 0.1, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	c := client.Open(d)

	// The "view": US production companies and the titles they worked on.
	view := `
FROM title AS t, movie_companies AS mc, company_name AS cn
WHERE cn.country_code = '[us]'
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND t.production_year > 2015`

	rows, err := c.Query("SELECT t.title, cn.name " + view)
	if err != nil {
		log.Fatal(err)
	}
	// Pick one output tuple whose lineage we want.
	if !rows.Next() {
		log.Fatal("view is empty")
	}
	var title, company string
	if err := rows.Scan(&title, &company); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view tuple under investigation: (%q, %q)\n\n", title, company)

	// Derivation set: restrict the query to that tuple and ask for the
	// subdatabase with ALL attributes of every referenced relation. The
	// returned relations are exactly Cui et al.'s derivation set.
	lineageSQL := fmt.Sprintf(
		"SELECT RESULTDB t.*, mc.*, cn.* %s AND t.title = '%s' AND cn.name = '%s'",
		view, escape(title), escape(company))
	sub, err := c.QuerySubDB(lineageSQL)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("derivation set (every base tuple contributing to the view tuple):")
	for _, rel := range sub.Relations() {
		cur := sub.Cursor(rel)
		fmt.Printf("-- %s (%s)\n", rel, strings.Join(cur.Columns(), ", "))
		n := 0
		for cur.Next() {
			if n < 5 {
				fmt.Println("  ", cur.Row())
			}
			n++
		}
		if n > 5 {
			fmt.Printf("   ... %d more\n", n-5)
		}
	}

	// The interesting case: several movie_companies rows can link the same
	// title and company (different company roles); single-table provenance
	// flattens them away, the subdatabase keeps each contributing tuple.
	mc := sub.Cursor("mc")
	n := 0
	for mc.Next() {
		n++
	}
	fmt.Printf("\nthe view tuple is derived through %d movie_companies link(s)\n", n)
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }

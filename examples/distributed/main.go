// Distributed: the paper's use case 3 (Section 1.2) — shipping query results
// over a network.
//
// A server hosts the JOB-like workload; a client connects over TCP and runs
// the same query twice: classic single-table and SELECT RESULTDB. The
// subdatabase ships far fewer bytes; at the paper's modeled 100 Mbps that
// translates directly into transfer-time savings (Table 3), at the cost of
// a client-side post-join.
package main

import (
	"fmt"
	"log"
	"time"

	"resultdb/internal/client"
	"resultdb/internal/db"
	"resultdb/internal/wire"
	"resultdb/internal/workload/job"
)

const query = `
SELECT k.keyword, n.name, t.title
FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n, title AS t
WHERE ci.movie_id = t.id
  AND mk.movie_id = t.id
  AND mk.keyword_id = k.id
  AND ci.person_id = n.id
  AND t.production_year > 1980`

func main() {
	// Server side: load the workload and listen on a loopback socket.
	served := db.New()
	if err := job.Load(served, job.Config{Scale: 0.1, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	srv := wire.NewServer(served)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("server listening on", addr)

	// Client side: a real TCP connection.
	conn, err := wire.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	run := func(label, sql string) (*db.Result, int, time.Duration) {
		before := conn.BytesRead()
		start := time.Now()
		res, err := conn.Exec(sql)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		elapsed := time.Since(start)
		return res, conn.BytesRead() - before, elapsed
	}

	st, stBytes, stTime := run("single-table", query)
	rdb, rdbBytes, rdbTime := run("resultdb", "SELECT RESULTDB"+query[len("\nSELECT"):])

	model := wire.DefaultTransfer // 100 Mbps, as in the paper
	fmt.Printf("\nsingle table : %7d rows, %9d wire bytes, loopback %7v, @100Mbps %8v\n",
		st.First().NumRows(), stBytes, stTime.Round(time.Millisecond), model.Duration(stBytes).Round(time.Millisecond))
	rows := 0
	for _, s := range rdb.Sets {
		rows += s.NumRows()
	}
	fmt.Printf("subdatabase  : %7d rows, %9d wire bytes, loopback %7v, @100Mbps %8v (%d relations)\n",
		rows, rdbBytes, rdbTime.Round(time.Millisecond), model.Duration(rdbBytes).Round(time.Millisecond), len(rdb.Sets))
	fmt.Printf("transfer reduction: %.1fx\n", float64(stBytes)/float64(rdbBytes))

	// Plan shipping (the paper's "subdatabase snapshot", Section 7): ask
	// for the relationship-preserving subdatabase and let the client
	// reconstruct the single-table result mechanically from the shipped
	// post-join plan — no knowledge of the original query needed.
	sub, err := client.Open(conn).QuerySubDB(
		"SELECT RESULTDB PRESERVING" + query[len("\nSELECT"):])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nshipped plan : %v\n", sub.Result().PostJoinPlan)
	start := time.Now()
	post, err := sub.PostJoin()
	if err != nil {
		log.Fatal(err)
	}
	// The paper's semantics are set-based (Section 2.2), so compare the
	// reconstruction as a set of rows against the single-table result.
	distinct := map[string]bool{}
	for post.Next() {
		distinct[post.Row().String()] = true
	}
	elapsed := time.Since(start)
	stDistinct := map[string]bool{}
	for _, r := range st.First().Rows {
		stDistinct[r.String()] = true
	}
	fmt.Printf("client post-join: %d distinct rows in %v (single table: %d distinct rows)\n",
		len(distinct), elapsed.Round(time.Millisecond), len(stDistinct))
}

// Hierarchy: the paper's use case 1 (Section 1.2) — querying subtype tables.
//
// products has two subtypes, electronics and clothing, with incompatible
// schemas. Classic SQL must LEFT OUTER JOIN them into one table, padding
// with NULLs (Listing 2). SELECT RESULTDB returns each subtype as its own
// clean relation, eliminating the padding entirely.
package main

import (
	"fmt"
	"log"

	"resultdb/internal/db"
	"resultdb/internal/types"
	"resultdb/internal/workload/hierarchy"
)

func main() {
	d := db.New()
	if err := hierarchy.Load(d, hierarchy.DefaultConfig()); err != nil {
		log.Fatal(err)
	}

	// Listing 2: single-table formulation with OUTER JOINs.
	outer, err := d.QuerySQL(hierarchy.OuterJoinQuery)
	if err != nil {
		log.Fatal(err)
	}
	set := outer.First()
	nulls := 0
	for _, row := range set.Rows {
		for _, v := range row {
			if v.IsNull() {
				nulls++
			}
		}
	}
	fmt.Printf("single-table (LEFT OUTER JOIN): %d rows x %d cols, %d bytes, %d NULL padding cells\n",
		set.NumRows(), len(set.Columns), outer.WireSize(), nulls)

	// RESULTDB formulation: one clean relation per subtype.
	elec, err := d.QuerySQL(hierarchy.ResultDBElectronics)
	if err != nil {
		log.Fatal(err)
	}
	cloth, err := d.QuerySQL(hierarchy.ResultDBClothing)
	if err != nil {
		log.Fatal(err)
	}
	total := elec.WireSize() + cloth.WireSize()
	fmt.Printf("RESULTDB: electronics %d rows + clothing %d rows, %d bytes, 0 NULL padding cells\n",
		elec.First().NumRows(), cloth.First().NumRows(), total)
	fmt.Printf("size reduction: %.1fx\n", float64(outer.WireSize())/float64(total))

	fmt.Println("\nfirst electronics rows (id, pid, storage):")
	preview(elec.First().Rows, 3)
	fmt.Println("first clothing rows (id, pid, size):")
	preview(cloth.First().Rows, 3)
}

func preview(rows []types.Row, n int) {
	for i, row := range rows {
		if i >= n {
			return
		}
		fmt.Println("  ", row)
	}
}

// Quickstart: build a tiny shop database (the paper's Figure 1 running
// example) and query it twice — once as plain SQL returning a single
// denormalized table (Figure 2), once with SELECT RESULTDB returning the
// subdatabase (the gray rows of Figure 1).
package main

import (
	"fmt"
	"log"

	"resultdb/internal/db"
)

const schema = `
CREATE TABLE customers (id INTEGER PRIMARY KEY, name TEXT, state TEXT);
CREATE TABLE orders    (oid INTEGER PRIMARY KEY, cid INTEGER, pid INTEGER);
CREATE TABLE products  (id INTEGER PRIMARY KEY, name TEXT, category TEXT);

INSERT INTO customers VALUES
  (0, 'custA', 'NY'), (1, 'custB', 'CA'), (2, 'custC', 'NY');
INSERT INTO orders VALUES
  (0, 0, 1), (1, 1, 1), (2, 1, 2), (3, 2, 1), (4, 0, 2), (5, 1, 3);
INSERT INTO products VALUES
  (0, 'smartphone', 'electronics'), (1, 'laptop', 'electronics'),
  (2, 'shirt', 'clothing'), (3, 'pants', 'clothing');
`

const query = `
SELECT c.name, p.name, p.category
FROM customers AS c, orders AS o, products AS p
WHERE c.state = 'NY' AND c.id = o.cid AND p.id = o.pid`

func main() {
	d := db.New()
	if _, err := d.ExecScript(schema); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== single-table result (classic SQL, denormalized) ==")
	st, err := d.QuerySQL(query)
	if err != nil {
		log.Fatal(err)
	}
	printResult(st)

	fmt.Println("\n== SELECT RESULTDB (the subdatabase: no redundancy, no information loss) ==")
	rdb, err := d.QuerySQL("SELECT RESULTDB c.name, p.name, p.category FROM customers AS c, orders AS o, products AS p WHERE c.state = 'NY' AND c.id = o.cid AND p.id = o.pid")
	if err != nil {
		log.Fatal(err)
	}
	printResult(rdb)

	fmt.Printf("\nresult sizes: single table %d bytes, subdatabase %d bytes\n",
		st.WireSize(), rdb.WireSize())
}

func printResult(res *db.Result) {
	for _, set := range res.Sets {
		if len(res.Sets) > 1 {
			fmt.Printf("-- relation %s\n", set.Name)
		}
		for _, row := range set.Rows {
			fmt.Println("  ", row)
		}
	}
}

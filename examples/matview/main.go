// Matview: the paper's use case 2 (Section 1.2) — materialized views without
// denormalization redundancy.
//
// A classic materialized view stores the joined, denormalized result; a
// RESULTDB view stores only the reduced base relations — typically far
// smaller — and still supports reconstructing the join (the post-join).
package main

import (
	"fmt"
	"log"

	"resultdb/internal/db"
	"resultdb/internal/workload/job"
)

// The view joins titles, their US production companies, and their plot
// info lines: every extra info line repeats title+company text, every extra
// company repeats title+info text — classic multiplicative redundancy.
const viewBody = `
FROM title AS t, movie_companies AS mc, company_name AS cn, movie_info AS mi, info_type AS it
WHERE cn.country_code = '[us]'
  AND it.id = 10
  AND mc.company_id = cn.id
  AND mc.movie_id = t.id
  AND mi.movie_id = t.id
  AND mi.info_type_id = it.id
  AND t.production_year > 2000`

func main() {
	d := db.New()
	if err := job.Load(d, job.Config{Scale: 0.25, Seed: 42}); err != nil {
		log.Fatal(err)
	}

	// Classic materialized view: the denormalized join result.
	_, err := d.Exec("CREATE MATERIALIZED VIEW flat_mv AS SELECT t.title AS title, cn.name AS company, mi.info AS info " + viewBody)
	if err != nil {
		log.Fatal(err)
	}
	flat, err := d.Table("flat_mv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic MV:  1 table, %6d rows, %8d bytes (denormalized)\n",
		flat.Len(), flat.WireSize())

	// RESULTDB materialized view: one reduced base table per relation.
	res, err := d.Exec("CREATE MATERIALIZED VIEW norm_mv AS SELECT RESULTDB t.title, cn.name, mi.info " + viewBody)
	if err != nil {
		log.Fatal(err)
	}
	totalBytes := 0
	fmt.Printf("RESULTDB MV: %d tables —", len(res.Sets))
	for _, set := range res.Sets {
		fmt.Printf(" %s(%d rows)", set.Name, set.NumRows())
		totalBytes += set.WireSize()
	}
	fmt.Printf(", %d bytes total\n", totalBytes)
	fmt.Printf("storage reduction: %.1fx\n", float64(flat.WireSize())/float64(totalBytes))

	// The stored views are ordinary tables: filter one directly — much
	// cheaper than scanning the wide flat view.
	cnt, err := d.QuerySQL("SELECT COUNT(*) FROM norm_mv_cn AS v WHERE v.name LIKE '%Pictures%'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("companies in the view matching '%%Pictures%%': %s\n", cnt.First().Rows[0])

	// The single-table result stays reconstructible: post-join the stored
	// views on the preserved keys (Definition 2.3). The paper's semantics
	// are set-based (Section 2.2), so we compare DISTINCT results — the
	// flat view may carry exact-duplicate rows (e.g. a company linked to
	// the same movie in two roles) that set semantics collapses.
	post, err := d.QuerySQL(`
SELECT DISTINCT t.title, cn.name, mi.info
FROM norm_mv_t AS t, norm_mv_mc AS mc, norm_mv_cn AS cn, norm_mv_mi AS mi
WHERE mc.company_id = cn.id AND mc.movie_id = t.id AND mi.movie_id = t.id`)
	if err != nil {
		log.Fatal(err)
	}
	distinctFlat, err := d.QuerySQL("SELECT DISTINCT f.title, f.company, f.info FROM flat_mv AS f")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-join over the stored views: %d distinct rows (flat view: %d distinct rows)\n",
		post.First().NumRows(), distinctFlat.First().NumRows())
}

#!/bin/sh
# verify.sh — repo verification gate.
#
# Runs static checks, a full build, the complete test suite (which includes
# the cache differential gate: cold/warm/post-DML executions byte-identical
# to an uncached oracle across JOB, star, and hierarchy), the race detector
# over the concurrency-sensitive packages (the morsel-parallel execution
# layer, the columnar store, their consumers, the tracer, the result cache,
# and the wire server/client stress tests), the vectorized differential gate
# (colstore execution byte-identical to the row-path oracle across
# parallelism degrees and cache settings), the wire v2 differential gate
# (columnar payloads and streamed transfer byte-identical to a row-path
# oracle across workloads, parallelism degrees, and connection flavors), a
# vectorized benchmark smoke, the stats differential gate (cost-based
# planning byte-identical to the heuristic planner across workloads,
# parallelism degrees, and execution paths), the chaos differential gate (fault-injected
# connections must either converge to the byte-exact oracle after retries
# or fail with a typed terminal error — never silent corruption), the
# crash-recovery differential gate (kill the process at every interesting
# WAL byte offset, recover, and require byte-identical state against an
# uncrashed oracle with prefix consistency: acked commits never lost,
# unacked tail droppable, nothing half-applied), a short fuzzing pass over
# the byte-hostile surfaces (SQL text in, wire bytes in, fault plans in,
# WAL segments in, snapshots in), and the tracer overhead guard.
set -eu

cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (parallel, colstore, engine, core, bloom, stats, trace, db, cache, wire, faultnet, client, wal, snapshot, durable)"
go test -race -timeout 300s ./internal/parallel ./internal/colstore ./internal/engine \
	./internal/core ./internal/bloom ./internal/stats ./internal/trace ./internal/db \
	./internal/cache ./internal/wire ./internal/faultnet ./internal/client \
	./internal/wal ./internal/snapshot ./internal/durable

echo "== MVCC concurrency gate (N readers x M writers vs per-prefix wire-byte oracles, session contract, snapshot-keyed cache races, checkpoints under load, under -race)"
go test -race -timeout 300s -count=1 \
	-run 'TestMVCC|TestSession|TestSnapshotSeesCommittedState|TestDoAt|TestCheckpointDuringWrites' \
	./internal/db ./internal/cache ./internal/durable

echo "== lint: writer lock confined to internal/db/db.go"
# The MVCC invariant: readers are lock-free, and every d.mu acquisition lives
# in db.go where the writer protocol is defined. New direct references
# anywhere else are a design regression, not a style nit.
mu_refs=$(grep -rn 'd\.mu\.' --include='*.go' internal cmd | grep -v '^internal/db/db\.go:' || true)
if [ -n "$mu_refs" ]; then
	echo "FAIL: d.mu referenced outside internal/db/db.go (use withWriter or the snapshot API):"
	echo "$mu_refs"
	exit 1
fi

echo "== cache differential + stress gate (cold/warm/invalidate vs uncached oracle, under -race)"
go test -race -run 'TestCacheDifferential|TestServerCacheStress' -count=1 ./internal/wire

echo "== vectorized differential gate (colstore candidates vs row-path oracle, par x cache, under -race)"
go test -race -run 'TestVectorizedDifferential' -count=1 ./internal/wire

echo "== stats differential gate (cost-based planner vs heuristic oracle, par x vec, under -race)"
go test -race -run 'TestStatsDifferential|TestCostBased' -count=1 ./internal/wire ./internal/core

echo "== wire v2 differential gate (v2 buffered/streamed x par vs v1 oracle, v2 <= v1 bytes, under -race)"
go test -race -run 'TestWireV2Differential|TestStreamedMatchesBuffered|TestExecStream' -count=1 \
	./internal/wire ./internal/db

echo "== chaos differential gate (fault plans x v1/v2 x buffered/streamed x par, under -race)"
go test -race -timeout 300s -count=1 \
	-run 'TestChaos|TestIntegrityNegotiated|TestShutdown|TestServerStats' \
	./internal/wire

echo "== crash-recovery differential gate (kill at every WAL byte offset vs uncrashed oracle, under -race)"
go test -race -timeout 300s -count=1 \
	-run 'TestCrashRecoveryDifferential|TestCrashDuringCheckpoint|TestRecoveryLiveness|TestRecoveryColdCache|TestRecoveryVectorizedResults' \
	./internal/durable

echo "== vectorized benchmark smoke (both paths run once on the 16b plan)"
go test -run '^$' -bench 'BenchmarkVectorized(Join|Reduce)16b' -benchtime 1x .

echo "== fuzz smoke (10s per target)"
go test -run '^$' -fuzz FuzzParse -fuzztime 10s ./internal/sqlparse
go test -run '^$' -fuzz FuzzEncodeDecode -fuzztime 10s ./internal/wire
go test -run '^$' -fuzz FuzzFaultPlan -fuzztime 10s ./internal/wire
go test -run '^$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal
go test -run '^$' -fuzz FuzzSnapshotLoad -fuzztime 10s ./internal/snapshot
go test -run '^$' -fuzz FuzzHistogramBuild -fuzztime 10s ./internal/stats

echo "== tracer overhead guard"
# The disabled (nil) tracer path is guarded structurally — it must not
# allocate at all (TestNilTracerCostsNothing, run by the suite above, its
# nominal cost is a nil check, well under 2% of BenchmarkParallelJoin16b).
# Here we additionally bound the cost of *enabled* tracing on the heaviest
# acyclic query's plan; the 1.20 gate is deliberately looser than the
# nominal <2% so scheduler noise on shared CI boxes cannot flake the build.
bench_out=$(go test -run '^$' -bench BenchmarkTracerOverhead16b -benchtime 5x .)
echo "$bench_out"
echo "$bench_out" | awk '
	$1 ~ /\/off/ { off = $3 }
	$1 ~ /\/on/  { on = $3 }
	END {
		if (off == 0 || on == 0) { print "FAIL: benchmark output missing"; exit 1 }
		printf "tracer on/off time ratio: %.3f\n", on / off
		if (on / off > 1.20) { print "FAIL: tracing overhead exceeds budget"; exit 1 }
	}'

echo "verify.sh: all checks passed"

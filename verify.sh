#!/bin/sh
# verify.sh — repo verification gate.
#
# Runs static checks, a full build, the complete test suite, and the race
# detector over the concurrency-sensitive packages (the morsel-parallel
# execution layer and its two main consumers).
set -eu

cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (parallel, engine, core, bloom)"
go test -race ./internal/parallel ./internal/engine ./internal/core ./internal/bloom

echo "verify.sh: all checks passed"
